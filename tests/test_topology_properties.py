"""Empirical-vs-closed-form topology distribution tests (topology.properties).

These close the loop between the analytical model's Eq. 6/8 assumptions and
the concrete topology the simulator runs on.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import journey_length_pmf, mean_journey_links
from repro.topology import (
    MPortNTree,
    empirical_mean_links,
    empirical_nca_distribution,
    route,
    verify_route,
)

trees = st.tuples(st.sampled_from([4, 6, 8]), st.integers(1, 3))


class TestEq6Realisation:
    @given(trees)
    def test_empirical_pmf_matches_eq6(self, params):
        m, n = params
        tree = MPortNTree(m, n)
        empirical = empirical_nca_distribution(tree, source_index=0)
        assert np.allclose(empirical, journey_length_pmf(m, n))

    @given(trees, st.data())
    def test_pmf_source_invariant(self, params, data):
        """The NCA-level distribution is identical from every source node."""
        m, n = params
        tree = MPortNTree(m, n)
        src = data.draw(st.integers(0, tree.num_nodes - 1))
        assert np.allclose(
            empirical_nca_distribution(tree, source_index=src),
            empirical_nca_distribution(tree, source_index=0),
        )

    def test_all_pairs_distribution(self):
        tree = MPortNTree(4, 2)
        assert np.allclose(empirical_nca_distribution(tree), journey_length_pmf(4, 2))


class TestEq8Realisation:
    @given(trees)
    def test_empirical_mean_distance_matches_eq8(self, params):
        m, n = params
        tree = MPortNTree(m, n)
        assert empirical_mean_links(tree) == pytest.approx(mean_journey_links(m, n))


class TestVerifyRoute:
    def test_detects_valley(self):
        """A route that descends then re-ascends must be rejected."""
        tree = MPortNTree(4, 2)
        a, b = tree.node(0), tree.node(7)
        good = route(tree, a, b)
        verify_route(tree, good)
        # Construct a valley: go up, down, then up again by concatenation.
        c = tree.node(1)
        first = route(tree, a, b)
        second = route(tree, b, c)
        from repro.topology import Route

        valley = Route(first.links + second.links)
        with pytest.raises(ValueError, match="Up\\*/Down\\*|not a physical"):
            verify_route(tree, valley)

    def test_detects_teleport(self):
        tree = MPortNTree(4, 2)
        from repro.topology import ChannelKind, Link, Route

        fake = Route(
            (
                Link(tree.node(0), tree.leaf_switch(tree.node(7)), ChannelKind.NODE_TO_SWITCH),
            )
        )
        with pytest.raises(ValueError, match="not a physical link"):
            verify_route(tree, fake)
