"""Intra-cluster model tests (core.intra vs paper §3.1)."""

import pytest

from repro.core import (
    NET1,
    MessageSpec,
    ModelOptions,
    ServiceTimes,
    intra_cluster_latency,
    journey_length_pmf,
    mean_journey_links,
)
from repro.core.parameters import ClusterClass


def make_class(tree_depth=2, nodes=32, count=1, u=0.5, icn1=NET1, ecn1=NET1, m=8):
    del m
    return ClusterClass(tree_depth=tree_depth, nodes=nodes, count=count, u=u, icn1=icn1, ecn1=ecn1, name="t")


MSG = MessageSpec(32, 256.0)


class TestZeroLoad:
    def test_zero_load_depth1(self):
        # n=1: every journey is one stage; T_in = M t_cn, E_in = t_cn.
        cls = make_class(tree_depth=1, nodes=8, u=0.8)
        result = intra_cluster_latency(cls, switch_ports=8, generation_rate=0.0, message=MSG)
        st = ServiceTimes.for_network(NET1, MSG)
        assert result.network_latency == pytest.approx(32 * st.t_cn)
        assert result.tail_time == pytest.approx(st.t_cn)
        assert result.source_wait == 0.0
        assert result.total == pytest.approx(32 * st.t_cn + st.t_cn)

    def test_zero_load_general_depth(self):
        # At lambda=0 all waits vanish: T_in = sum_h P_h * M * t(stage 0).
        cls = make_class(tree_depth=3, nodes=128, u=0.5)
        result = intra_cluster_latency(cls, switch_ports=8, generation_rate=0.0, message=MSG)
        st = ServiceTimes.for_network(NET1, MSG)
        pmf = journey_length_pmf(8, 3)
        t_in = pmf[0] * 32 * st.t_cn + (pmf[1] + pmf[2]) * 32 * st.t_cs
        e_in = sum(pmf[h - 1] * (2 * (h - 1) * st.t_cs + st.t_cn) for h in (1, 2, 3))
        assert result.network_latency == pytest.approx(t_in)
        assert result.tail_time == pytest.approx(e_in)


class TestRates:
    def test_eq7_aggregate_rate(self):
        cls = make_class(tree_depth=2, nodes=32, u=0.75)
        result = intra_cluster_latency(cls, switch_ports=8, generation_rate=1e-3, message=MSG)
        assert result.aggregate_rate == pytest.approx(32 * 1e-3 * 0.25)

    def test_eq10_channel_rate(self):
        cls = make_class(tree_depth=2, nodes=32, u=0.0)
        result = intra_cluster_latency(cls, switch_ports=8, generation_rate=2e-3, message=MSG)
        lam = 32 * 2e-3
        expected = lam * mean_journey_links(8, 2) / (4 * 2 * 32)
        assert result.channel_rate == pytest.approx(expected)


class TestLoadBehaviour:
    def test_monotone_in_load(self):
        cls = make_class(tree_depth=2, nodes=32, u=0.5)
        latencies = [
            intra_cluster_latency(cls, switch_ports=8, generation_rate=lam, message=MSG).total
            for lam in (1e-5, 1e-4, 1e-3)
        ]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_saturation_flag(self):
        cls = make_class(tree_depth=2, nodes=32, u=0.0)
        result = intra_cluster_latency(cls, switch_ports=8, generation_rate=10.0, message=MSG)
        assert result.saturated
        assert result.total == float("inf")

    def test_per_node_rate_option_reduces_wait(self):
        cls = make_class(tree_depth=2, nodes=32, u=0.5)
        paper = intra_cluster_latency(cls, switch_ports=8, generation_rate=5e-4, message=MSG)
        per_node = intra_cluster_latency(
            cls,
            switch_ports=8,
            generation_rate=5e-4,
            message=MSG,
            options=ModelOptions(source_queue_rate="per_node"),
        )
        assert per_node.source_wait < paper.source_wait

    def test_exponential_variance_option_increases_wait(self):
        cls = make_class(tree_depth=3, nodes=128, u=0.5)
        paper = intra_cluster_latency(cls, switch_ports=8, generation_rate=5e-4, message=MSG)
        expo = intra_cluster_latency(
            cls,
            switch_ports=8,
            generation_rate=5e-4,
            message=MSG,
            options=ModelOptions(variance_approximation="exponential"),
        )
        # sigma^2 = T^2 >= (T - M t_cn)^2 for T >= M t_cn / 2 (always true here).
        assert expo.source_wait > paper.source_wait

    def test_blocking_fraction_grows_with_load(self):
        cls = make_class(tree_depth=2, nodes=32, u=0.2)
        low = intra_cluster_latency(cls, switch_ports=8, generation_rate=1e-5, message=MSG)
        high = intra_cluster_latency(cls, switch_ports=8, generation_rate=2e-3, message=MSG)
        assert high.blocking_fraction > low.blocking_fraction
