"""Channel service-time tests (core.service_times vs paper Eqs. 11-12)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    NET1,
    NET2,
    MessageSpec,
    ModelOptions,
    NetworkCharacteristics,
    ServiceTimes,
    node_channel_time,
    switch_channel_time,
)


class TestSwitchChannelTime:
    def test_eq12_net1(self):
        # t_cs = alpha_s + beta * d_m = 0.02 + 256/500
        assert switch_channel_time(NET1, 256.0) == pytest.approx(0.532)

    def test_eq12_net2(self):
        assert switch_channel_time(NET2, 256.0) == pytest.approx(0.01 + 256 / 250)

    @given(st.floats(1.0, 4096.0))
    def test_linear_in_flit_size(self, d_m):
        t = switch_channel_time(NET1, d_m)
        assert t == pytest.approx(NET1.switch_latency + d_m / NET1.bandwidth)


class TestNodeChannelTime:
    def test_default_convention_halves_network_latency(self):
        t = node_channel_time(NET2, 256.0)
        assert t == pytest.approx(0.5 * 0.05 + 256 / 250)

    def test_full_convention(self):
        t = node_channel_time(NET2, 256.0, convention="full_network_latency")
        assert t == pytest.approx(0.05 + 256 / 250)

    def test_unknown_convention_rejected(self):
        with pytest.raises(ValueError):
            node_channel_time(NET1, 256.0, convention="bogus")

    def test_serialisation_term_never_halved(self):
        # Whatever the convention, a full flit crosses the wire.
        for convention in ("half_network_latency", "full_network_latency"):
            t = node_channel_time(NET1, 512.0, convention=convention)
            assert t >= 512.0 / NET1.bandwidth


class TestServiceTimes:
    def test_for_network_bundles_both(self):
        st_ = ServiceTimes.for_network(NET1, MessageSpec(32, 256.0))
        assert st_.t_cs == pytest.approx(0.532)
        assert st_.t_cn == pytest.approx(0.005 + 0.512)

    def test_message_times_scale_with_flits(self):
        st_ = ServiceTimes.for_network(NET1, MessageSpec(32, 256.0))
        assert st_.message_switch_time(32) == pytest.approx(32 * 0.532)
        assert st_.message_node_time(64) == pytest.approx(64 * st_.t_cn)

    def test_respects_options_convention(self):
        opts = ModelOptions(tcn_convention="full_network_latency")
        st_full = ServiceTimes.for_network(NET2, MessageSpec(32, 256.0), opts)
        st_half = ServiceTimes.for_network(NET2, MessageSpec(32, 256.0))
        assert st_full.t_cn > st_half.t_cn

    @given(st.floats(10, 2000), st.floats(0, 1), st.floats(0, 1))
    def test_faster_network_never_slower(self, bandwidth, alpha_n, alpha_s):
        slow = NetworkCharacteristics(bandwidth=bandwidth, network_latency=alpha_n, switch_latency=alpha_s)
        fast = NetworkCharacteristics(bandwidth=bandwidth * 2, network_latency=alpha_n, switch_latency=alpha_s)
        assert switch_channel_time(fast, 256.0) < switch_channel_time(slow, 256.0)
