"""Documentation integrity tests (tools/check_docs.py).

The docs CI job runs the same checker; keeping it in the tier-1 suite
means a broken link or a bit-rotted quickstart block fails locally, not
only on CI.
"""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CHECKER = ROOT / "tools" / "check_docs.py"


def run_checker(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CHECKER), *args],
        cwd=ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_links_and_navigation():
    """Relative links resolve; index links every page and back."""
    proc = run_checker("--links-only")
    assert proc.returncode == 0, proc.stderr or proc.stdout


def test_quickstart_blocks_run_clean():
    """Every fenced bash block of docs/index.md exits 0 (tiny workloads)."""
    proc = run_checker()
    assert proc.returncode == 0, proc.stderr or proc.stdout
    assert "quickstart block(s) ran clean" in proc.stderr


def test_checker_catches_a_broken_link(tmp_path):
    """The checker itself fails loudly on a dangling target."""
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "index.md").write_text("# index\n[gone](missing.md)\n")
    # Point the module at the scratch tree by copying it next to it.
    tools = tmp_path / "tools"
    tools.mkdir()
    (tools / "check_docs.py").write_text(CHECKER.read_text())
    proc = subprocess.run(
        [sys.executable, str(tools / "check_docs.py"), "--links-only"],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 1
    # Diagnostics follow the shared tooling convention: path:line: CODE
    # on stdout, summary on stderr (same shape as tools.reprolint).
    assert "docs/index.md:2: DOC001 broken link -> missing.md" in proc.stdout
    assert "problem(s)" in proc.stderr
