"""M/G/1 queueing tests (core.queueing vs classic results)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import mg1_wait


class TestKnownQueues:
    def test_md1_wait(self):
        # M/D/1: W = rho * x / (2 (1 - rho))
        lam, x = 0.5, 1.0
        rho = lam * x
        expected = rho * x / (2 * (1 - rho))
        assert mg1_wait(lam, x, 0.0).wait == pytest.approx(expected)

    def test_mm1_wait(self):
        # M/M/1: sigma^2 = x^2, W = rho x / (1 - rho)
        lam, x = 0.25, 2.0
        rho = lam * x
        expected = rho * x / (1 - rho)
        assert mg1_wait(lam, x, x * x).wait == pytest.approx(expected)

    def test_zero_arrivals_wait_nothing(self):
        result = mg1_wait(0.0, 5.0, 1.0)
        assert result.wait == 0.0
        assert result.utilization == 0.0
        assert not result.saturated


class TestSaturation:
    def test_saturates_at_rho_one(self):
        result = mg1_wait(1.0, 1.0, 0.0)
        assert result.saturated
        assert result.wait == float("inf")

    def test_saturates_beyond_rho_one(self):
        assert mg1_wait(2.0, 1.0, 0.0).saturated

    def test_infinite_service_is_saturation(self):
        result = mg1_wait(0.1, float("inf"), 0.0)
        assert result.saturated

    def test_infinite_service_with_no_arrivals_is_idle(self):
        result = mg1_wait(0.0, float("inf"), 0.0)
        assert not result.saturated
        assert result.wait == 0.0


class TestProperties:
    @given(st.floats(0.01, 0.9), st.floats(0.1, 10.0), st.floats(0.0, 50.0))
    def test_wait_nonnegative_and_finite_below_saturation(self, rho, x, var):
        lam = rho / x
        result = mg1_wait(lam, x, var)
        assert result.wait >= 0.0
        assert not result.saturated

    @given(st.floats(0.1, 5.0), st.floats(0.0, 10.0))
    def test_wait_monotone_in_arrival_rate(self, x, var):
        lam_star = 1.0 / x
        waits = [mg1_wait(f * lam_star, x, var).wait for f in (0.2, 0.5, 0.8)]
        assert waits[0] < waits[1] < waits[2]

    @given(st.floats(0.05, 0.95), st.floats(0.1, 10.0))
    def test_variance_increases_wait(self, rho, x):
        lam = rho / x
        low = mg1_wait(lam, x, 0.0).wait
        high = mg1_wait(lam, x, 4 * x * x).wait
        assert high > low

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            mg1_wait(-0.1, 1.0, 0.0)

    def test_inconsistent_result_construction_rejected(self):
        from repro.core.queueing import MG1Result

        with pytest.raises(ValueError):
            MG1Result(wait=1.0, utilization=1.5, saturated=True)
