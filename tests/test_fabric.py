"""Resolved-fabric tests (simulation.fabric)."""

import numpy as np
import pytest

from repro.cluster import HeterogeneousSystem
from repro.core import MessageSpec, ModelOptions, ServiceTimes
from repro.simulation import GROUPS, ResolvedFabric


class TestChannelTable:
    def test_flit_times_match_service_primitives(self, small_fabric, small_system, small_message):
        st_icn1 = ServiceTimes.for_network(small_system.clusters[0].icn1, small_message)
        st_icn2 = ServiceTimes.for_network(small_system.icn2, small_message)
        for cid, ch in enumerate(small_fabric.channels):
            tau = small_fabric.flit_time[cid]
            if ch.network[0] == "icn1":
                expected = st_icn1.t_cn if ch.kind.is_node_link else st_icn1.t_cs
                assert tau == pytest.approx(expected)
            elif ch.network == ("icn2",):
                expected = st_icn2.t_cn if ch.kind.is_node_link else st_icn2.t_cs
                assert tau == pytest.approx(expected)

    def test_groups_cover_all_channels(self, small_fabric):
        counts = small_fabric.channels_per_group()
        assert set(counts) == set(GROUPS)
        assert sum(counts.values()) == small_fabric.num_channels

    def test_cd_groups_identified(self, small_fabric):
        counts = small_fabric.channels_per_group()
        # 4 clusters (m=4, n=2 -> 2 roots each): 1 concentrate link per
        # cluster into ICN2; 2 dispatch links per cluster (one per root).
        assert counts["cd-concentrate"] == 4
        assert counts["cd-dispatch"] == 8

    def test_ejection_flags(self, small_fabric):
        from repro.topology.addressing import NodeAddress

        for cid, ch in enumerate(small_fabric.channels):
            flagged = bool(small_fabric.ejection[cid])
            physical = ch.kind.value == "switch_to_node" and isinstance(ch.target, NodeAddress)
            assert flagged == physical

    def test_options_affect_tcn(self, small_system, small_message):
        system = HeterogeneousSystem(small_system)
        half = ResolvedFabric(system, small_message)
        full = ResolvedFabric(system, small_message, ModelOptions(tcn_convention="full_network_latency"))
        assert np.any(full.flit_time > half.flit_time)
        assert np.all(full.flit_time >= half.flit_time)


class TestResolve:
    def test_intra_single_segment(self, small_fabric):
        segments = small_fabric.resolve(0, 3)
        assert len(segments) == 1
        assert all(isinstance(c, int) for c in segments[0].channel_ids)

    def test_inter_three_segments(self, small_fabric):
        segments = small_fabric.resolve(0, 9)
        assert len(segments) == 3

    def test_bottleneck_is_max_flit_time(self, small_fabric):
        for seg in small_fabric.resolve(0, 9):
            taus = [small_fabric.flit_time[c] for c in seg.channel_ids]
            assert seg.bottleneck_flit_time == pytest.approx(max(taus))

    def test_caches_are_reused(self, small_fabric):
        a = small_fabric.resolve(0, 9)
        b = small_fabric.resolve(0, 9)
        assert a[0] is b[0]  # ascend cache
        assert a[1] is b[1]  # icn2 pair cache
        assert a[2] is b[2]  # descend cache

    def test_shared_legs_across_destinations(self, small_fabric):
        to_b = small_fabric.resolve(0, 9)
        to_c = small_fabric.resolve(0, 17)
        assert to_b[0] is to_c[0]  # same ascend leg object

    def test_self_resolution_rejected(self, small_fabric):
        with pytest.raises(ValueError):
            small_fabric.resolve(3, 3)
