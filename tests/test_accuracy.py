"""Accuracy-metric tests (repro.analysis.accuracy).

The metrics are shared by the validation harness and the calibration
engine, so the contracts locked here — exact arithmetic, non-finite
policies, delegation from ``ValidationCurve`` — underpin both.
"""

import math

import numpy as np
import pytest

from repro.analysis.accuracy import (
    ACCURACY_METRICS,
    light_load_error,
    max_abs_error,
    relative_errors,
    rms_weighted,
    score_errors,
)
from repro.validation.compare import ValidationCurve, ValidationPoint


class TestRelativeErrors:
    def test_exact_expression(self):
        errors = relative_errors([11.0, 9.0], [10.0, 10.0])
        assert errors.tolist() == [(11.0 - 10.0) / 10.0, (9.0 - 10.0) / 10.0]

    def test_matches_validation_point(self):
        point = ValidationPoint(
            load=1e-3, model_latency=37.21, sim_latency=35.04, sim_std=1.0, sim_completed=True
        )
        assert relative_errors([37.21], [35.04])[0] == point.relative_error

    def test_nonfinite_model_is_nan(self):
        errors = relative_errors([math.inf, 10.0], [10.0, 10.0])
        assert math.isnan(errors[0]) and errors[1] == 0.0

    def test_zero_sim_is_nan(self):
        assert math.isnan(relative_errors([10.0], [0.0])[0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="lengths differ"):
            relative_errors([1.0], [1.0, 2.0])


class TestMaxAbsError:
    def test_takes_largest_magnitude(self):
        assert max_abs_error([0.05, -0.12, 0.03]) == 0.12

    def test_propagate_policy_is_default(self):
        assert max_abs_error([0.05, math.nan]) == math.inf

    def test_skip_policy_ignores_nonfinite(self):
        assert max_abs_error([0.05, math.nan], nonfinite="skip") == 0.05

    def test_skip_policy_all_nonfinite_is_nan(self):
        assert math.isnan(max_abs_error([math.nan], nonfinite="skip"))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="nonfinite must be one of"):
            max_abs_error([0.1], nonfinite="ignore")


class TestLightLoadError:
    def test_picks_the_lightest_load(self):
        # Order-independent: the error at the smallest load wins.
        assert light_load_error([3e-4, 1e-4, 2e-4], [0.5, -0.04, 0.2]) == 0.04

    def test_nonfinite_at_light_load_is_inf(self):
        assert light_load_error([1e-4, 2e-4], [math.nan, 0.1]) == math.inf

    def test_nonfinite_elsewhere_is_ignored(self):
        assert light_load_error([1e-4, 2e-4], [0.1, math.nan]) == 0.1


class TestRmsWeighted:
    def test_exact_formula(self):
        loads = np.array([1.0, 3.0])
        errors = np.array([0.1, -0.2])
        expected = math.sqrt((1.0 * 0.01 + 3.0 * 0.04) / 4.0)
        assert rms_weighted(loads, errors) == expected

    def test_heavier_loads_count_more(self):
        # The same error pair scores worse when the bad point carries the
        # heavier load.
        bad_at_heavy = rms_weighted([1.0, 9.0], [0.01, 0.5])
        bad_at_light = rms_weighted([1.0, 9.0], [0.5, 0.01])
        assert bad_at_heavy > bad_at_light

    def test_propagate_policy(self):
        assert rms_weighted([1.0, 2.0], [0.1, math.nan]) == math.inf
        assert rms_weighted([1.0, 2.0], [0.1, math.nan], nonfinite="skip") == 0.1

    def test_requires_positive_loads(self):
        with pytest.raises(ValueError, match="loads must be positive"):
            rms_weighted([0.0, 1.0], [0.1, 0.1])


class TestScoreErrors:
    def test_covers_every_registered_metric(self):
        scores = score_errors([1e-4, 2e-4], [0.1, -0.2])
        assert tuple(scores) == ACCURACY_METRICS
        assert scores["max_abs_error"] == 0.2
        assert scores["light_load_error"] == 0.1

    def test_saturated_point_poisons_curve_scores(self):
        scores = score_errors([1e-4, 2e-4], [0.1, math.nan])
        assert scores["max_abs_error"] == math.inf
        assert scores["rms_weighted"] == math.inf
        # ... but the light-load point itself is still finite.
        assert scores["light_load_error"] == 0.1


class TestValidationCurveDelegation:
    def _curve(self, points):
        return ValidationCurve(label="t", points=tuple(points), sim_results=())

    def _point(self, load, model, sim):
        return ValidationPoint(
            load=load, model_latency=model, sim_latency=sim, sim_std=0.0, sim_completed=True
        )

    def test_max_abs_error_skips_saturated_points(self):
        curve = self._curve(
            [self._point(1e-4, 11.0, 10.0), self._point(2e-4, math.inf, 20.0)]
        )
        assert curve.max_abs_error() == 0.1

    def test_load_fraction_filter_preserved(self):
        curve = self._curve(
            [self._point(1e-4, 11.0, 10.0), self._point(1e-3, 30.0, 20.0)]
        )
        assert curve.max_abs_error() == 0.5
        assert curve.max_abs_error(load_fraction_below=0.5) == pytest.approx(0.1)
