"""Calibration-engine tests (repro.experiments.calibrate).

Locks the subsystem's contracts: deterministic option-space enumeration,
ground truth shared across combinations, serial/parallel bit-equality, an
on-disk simulator-curve cache whose hits are indistinguishable from fresh
runs, and — the regression the whole design hangs on — single-knob
calibration reproducing the hand-written ablation bench numbers bit for
bit.
"""

import json
import math

import pytest

from repro.cluster import homogeneous_system
from repro.core import AnalyticalModel, MessageSpec, ModelOptions, paper_system_544
from repro.core.sweep import find_saturation_load
from repro.experiments import Experiment
from repro.experiments.calibrate import (
    CALIBRATION_SCHEMA,
    SIM_CURVE_SCHEMA,
    calibrate_options,
    option_combinations,
    sim_curve_key,
)
from repro.io import ResultCache, to_jsonable
from repro.scenarios import AxisSpec, ScenarioSpec
from repro.simulation import MeasurementWindow, SimulationSession

TINY_AXES = [("relaxing_factor", (True, False)), ("concentrator_rate", ("pair_mean", "source_outgoing"))]
TINY_KW = dict(messages=300, seed=1)


def tiny_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="tiny",
        system=homogeneous_system(switch_ports=4, tree_depth=2, num_clusters=4),
        message=MessageSpec(16, 256.0),
    )


def canonical(payload) -> str:
    """Bit-stable text form (NaN/inf-safe) for table-equality assertions."""
    return json.dumps(to_jsonable(payload), sort_keys=True)


@pytest.fixture(scope="module")
def sim_cache(tmp_path_factory):
    """One on-disk curve cache shared by the module's calibration runs."""
    return ResultCache(tmp_path_factory.mktemp("calibration-cache"))


@pytest.fixture(scope="module")
def tiny_result(sim_cache):
    return calibrate_options([tiny_spec()], axes=TINY_AXES, cache=sim_cache, **TINY_KW)


class TestOptionCombinations:
    def test_full_space_is_96(self):
        varied, combos = option_combinations()
        assert len(combos) == 96
        assert [len(values) for _, values in varied] == [2, 3, 2, 2, 2, 2]
        assert len({name for name, _ in combos}) == 96

    def test_row_major_last_knob_fastest(self):
        _, combos = option_combinations()
        first, second = combos[0][1], combos[1][1]
        assert first.concentrator_rate == "pair_mean"
        assert second.concentrator_rate == "source_outgoing"
        # Every other knob still at its first domain value.
        assert second.tcn_convention == "half_network_latency"
        assert combos[0][0].startswith("tcn_convention=half_network_latency/")

    def test_fixed_pins_a_knob(self):
        varied, combos = option_combinations(fixed={"source_queue_rate": "per_node"})
        assert len(combos) == 32
        assert all(c.source_queue_rate == "per_node" for _, c in combos)
        assert "source_queue_rate" not in dict(varied)

    def test_axes_restrict_and_default_the_rest(self):
        varied, combos = option_combinations(axes=[("relaxing_factor", (True, False))])
        assert [name for name, _ in combos] == ["relaxing_factor=True", "relaxing_factor=False"]
        # Unmentioned knobs sit at the ModelOptions defaults.
        assert all(c.concentrator_rate == "pair_mean" for _, c in combos)

    def test_axisspec_and_options_prefix_accepted(self):
        varied, combos = option_combinations(
            axes=[AxisSpec("options.variance_approximation", ("paper", "exponential"))]
        )
        assert dict(varied) == {"variance_approximation": ("paper", "exponential")}

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown model option 'drain_model'"):
            option_combinations(fixed={"drain_model": "x"})

    def test_value_outside_domain_rejected(self):
        with pytest.raises(ValueError, match="cannot take 'maybe'"):
            option_combinations(axes=[("relaxing_factor", ("maybe",))])

    def test_everything_pinned_rejected(self):
        pins = ModelOptions().to_dict()
        with pytest.raises(ValueError, match="at least one varying knob"):
            option_combinations(fixed=pins)

    def test_knob_in_axes_and_fixed_rejected(self):
        with pytest.raises(ValueError, match="both axes and fixed"):
            option_combinations(
                axes=[("relaxing_factor", (True, False))], fixed={"relaxing_factor": True}
            )

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate option axis"):
            option_combinations(
                axes=[("relaxing_factor", (True,)), ("relaxing_factor", (False,))]
            )


class TestCalibrateResult:
    def test_schema_and_kind(self, tiny_result):
        assert tiny_result.schema == CALIBRATION_SCHEMA
        assert tiny_result.kind == "calibrate"
        assert tiny_result.scenario == "tiny"
        # The result is JSON-serialisable end to end.
        json.dumps(to_jsonable(tiny_result.to_dict()))

    def test_table_shape(self, tiny_result):
        data = tiny_result.data
        assert len(data["combinations"]) == 4
        lengths = {len(col) for col in data["columns"].values()}
        assert lengths == {4}
        assert set(data["columns"]) == {
            "combination",
            "relaxing_factor",
            "concentrator_rate",
            "rms_weighted:tiny",
            "score",
        }

    def test_ground_truth_shared_across_combinations(self, tiny_result):
        # One simulator curve per scenario: every combination scored
        # against the same four points.
        [scenario] = tiny_result.data["scenarios"]
        assert len(scenario["sim_latencies"]) == 4
        assert tiny_result.data["simulated_points"] == 4

    def test_loads_anchored_to_reference_saturation(self, tiny_result):
        spec = tiny_spec()
        lam_ref = find_saturation_load(AnalyticalModel(spec.system, spec.message))
        [scenario] = tiny_result.data["scenarios"]
        assert scenario["loads"] == [f * lam_ref for f in (0.2, 0.4, 0.6, 0.8)]

    def test_errors_reproduce_the_scalar_model(self, tiny_result):
        # Spot-check one combination's errors against a by-hand recompute
        # through the scalar reference model.
        spec = tiny_spec()
        [scenario] = tiny_result.data["scenarios"]
        record = next(
            r
            for r in tiny_result.data["combinations"]
            if r["options"]["relaxing_factor"] is False
            and r["options"]["concentrator_rate"] == "pair_mean"
        )
        model = AnalyticalModel(
            spec.system, spec.message, ModelOptions.from_dict(record["options"])
        )
        expected = [
            (model.evaluate(lam).latency - sim) / sim
            for lam, sim in zip(scenario["loads"], scenario["sim_latencies"])
        ]
        assert record["per_scenario"]["tiny"]["errors"] == expected

    def test_winner_is_the_score_minimum(self, tiny_result):
        data = tiny_result.data
        scores = [r["score"] for r in data["combinations"]]
        assert data["winner"]["score"] == min(scores)
        assert data["ranking"][0] == data["winner"]["index"]
        ranked = [data["combinations"][i]["score"] for i in data["ranking"]]
        assert ranked == sorted(ranked)

    def test_sensitivity_covers_varied_knobs(self, tiny_result):
        knobs = {s["knob"] for s in tiny_result.data["sensitivity"]}
        assert knobs == {"relaxing_factor", "concentrator_rate"}


class TestParallelAndCache:
    def test_parallel_is_bit_identical_to_serial(self, sim_cache, tiny_result):
        parallel = calibrate_options(
            [tiny_spec()], axes=TINY_AXES, cache=sim_cache, jobs=2, **TINY_KW
        )
        # Serial runs stack the whole model side in one cross-cell
        # evaluation; --jobs falls back to the per-combination fan-out.
        assert tiny_result.data["stacked"] is True
        assert parallel.data["stacked"] is False
        for field in ("combinations", "columns", "ranking", "winner"):
            assert canonical(parallel.data[field]) == canonical(tiny_result.data[field])

    def test_cached_run_simulates_nothing(self, sim_cache, tiny_result):
        again = calibrate_options([tiny_spec()], axes=TINY_AXES, cache=sim_cache, **TINY_KW)
        assert again.data["simulated_points"] == 0
        assert again.data["cached_curves"] == 1
        assert again.data["scenarios"][0]["from_cache"] is True
        assert canonical(again.data["combinations"]) == canonical(
            tiny_result.data["combinations"]
        )

    def test_restricting_the_space_reuses_the_curve(self, sim_cache, tiny_result):
        # The curve key is independent of the combination space.
        narrower = calibrate_options(
            [tiny_spec()], axes=[("relaxing_factor", (True, False))], cache=sim_cache, **TINY_KW
        )
        assert narrower.data["simulated_points"] == 0
        assert (
            narrower.data["scenarios"][0]["sim_latencies"]
            == tiny_result.data["scenarios"][0]["sim_latencies"]
        )

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        spec = tiny_spec()
        window = MeasurementWindow.scaled_paper(TINY_KW["messages"])
        lam_ref = find_saturation_load(AnalyticalModel(spec.system, spec.message))
        loads = [f * lam_ref for f in (0.2, 0.4, 0.6, 0.8)]
        seeds = [TINY_KW["seed"] + i for i in range(4)]
        key = sim_curve_key(spec, loads, seeds, window, "message")
        store.put(key, {"schema": SIM_CURVE_SCHEMA, "latencies": [1.0]})  # truncated
        result = calibrate_options(
            [spec], axes=[("relaxing_factor", (True, False))], cache=store, **TINY_KW
        )
        assert result.data["simulated_points"] == 4  # recomputed, not crashed

    def test_protocol_changes_the_key(self):
        spec = tiny_spec()
        window = MeasurementWindow.scaled_paper(300)
        base = sim_curve_key(spec, [1e-3], [0], window, "message")
        assert sim_curve_key(spec, [2e-3], [0], window, "message") != base
        assert sim_curve_key(spec, [1e-3], [1], window, "message") != base
        assert sim_curve_key(spec, [1e-3], [0], window, "flit") != base
        # Derived naming does not move the key.
        renamed = ScenarioSpec(name="other", system=spec.system, message=spec.message)
        assert sim_curve_key(renamed, [1e-3], [0], window, "message") == base


class TestSaturatingCombination:
    def test_early_saturating_reading_ranks_last(self, sim_cache):
        # The literal aggregate-pair reading saturates at ~0.23 of the
        # reference λ* on the tiny system, inside the 0.4/0.6/0.8 points:
        # its curve scores inf and ranks behind every finite reading.
        result = calibrate_options(
            [tiny_spec()],
            axes=[("source_queue_rate", ("paper", "aggregate_pair"))],
            cache=sim_cache,
            **TINY_KW,
        )
        records = {r["options"]["source_queue_rate"]: r for r in result.data["combinations"]}
        assert records["aggregate_pair"]["score"] == math.inf
        assert math.isfinite(records["paper"]["score"])
        # The lightest point (0.2 λ*_ref) is still below its knee, so the
        # light-load metric stays finite while the curve metrics blow up.
        assert math.isfinite(records["aggregate_pair"]["per_scenario"]["tiny"]["light_load_error"])
        assert result.data["ranking"][-1] == records["aggregate_pair"]["index"]
        assert result.data["winner"]["options"]["source_queue_rate"] == "paper"
        assert result.data["sensitivity_dropped"] == 1


class TestExperimentFacade:
    def test_facade_matches_direct_call(self, sim_cache, tiny_result):
        via_facade = Experiment(tiny_spec()).calibrate(
            axes=TINY_AXES, cache=sim_cache, **TINY_KW
        )
        assert canonical(via_facade.data["combinations"]) == canonical(
            tiny_result.data["combinations"]
        )
        assert via_facade.schema == CALIBRATION_SCHEMA


class TestValidation:
    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError, match="must be in \\(0, 1\\)"):
            calibrate_options([tiny_spec()], fractions=(0.5, 1.0))

    def test_unsorted_fractions_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            calibrate_options([tiny_spec()], fractions=(0.4, 0.2))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="metric must be one of"):
            calibrate_options([tiny_spec()], metric="mse")

    def test_duplicate_scenarios_rejected(self):
        with pytest.raises(ValueError, match="duplicate scenario names"):
            calibrate_options([tiny_spec(), tiny_spec()])

    def test_no_scenarios_rejected(self):
        with pytest.raises(ValueError, match="at least one scenario"):
            calibrate_options([])


class TestAblationBenchRegression:
    """Single-knob calibration == bench_ablation_relaxing_factor, bit for bit.

    Recomputes the bench's pipeline inline — scalar models at fractions of
    the default reading's λ*, one shared simulator seed, the scaled paper
    window — and pins that ``calibrate`` restricted to the same knob
    produces the *identical* floats.  (Same protocol as the bench at a
    reduced message budget; bit-equality is budget-independent because
    both sides consume the same budget.)
    """

    MESSAGES = 500
    SEED = 2

    def test_relaxing_factor_errors_bit_for_bit(self):
        system = paper_system_544()
        message = MessageSpec(32, 256.0)
        with_delta = AnalyticalModel(system, message)
        without_delta = AnalyticalModel(system, message, ModelOptions(relaxing_factor=False))
        lam_star = find_saturation_load(with_delta)
        loads = [f * lam_star for f in (0.2, 0.4, 0.6, 0.8)]
        window = MeasurementWindow.scaled_paper(self.MESSAGES)
        session = SimulationSession(system, message)
        bench_errors = {True: [], False: []}
        for lam in loads:
            sim = session.run(lam, seed=self.SEED, window=window).mean_latency
            bench_errors[True].append((with_delta.evaluate(lam).latency - sim) / sim)
            bench_errors[False].append((without_delta.evaluate(lam).latency - sim) / sim)

        result = calibrate_options(
            ["544"],
            fixed={
                "tcn_convention": "half_network_latency",
                "source_queue_rate": "paper",
                "variance_approximation": "paper",
                "inter_average": "paper",
                "concentrator_rate": "pair_mean",
            },
            messages=self.MESSAGES,
            seed=self.SEED,
            seed_stride=0,  # the benches share one seed across loads
        )
        assert [r["name"] for r in result.data["combinations"]] == [
            "relaxing_factor=True",
            "relaxing_factor=False",
        ]
        [scenario] = result.data["scenarios"]
        assert scenario["loads"] == loads
        for record in result.data["combinations"]:
            expected = bench_errors[record["options"]["relaxing_factor"]]
            assert record["per_scenario"]["544"]["errors"] == expected
