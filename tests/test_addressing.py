"""Addressing scheme tests (topology.addressing)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import NodeAddress, SwitchAddress, node_address_from_index, node_index_from_address

tree_params = st.tuples(st.sampled_from([2, 3, 4]), st.integers(1, 4))


class TestNodeAddress:
    def test_digit_properties(self):
        addr = NodeAddress((5, 2, 1))
        assert addr.depth == 3
        assert addr.top_digit == 5
        assert addr.leaf_port == 1

    def test_prefix(self):
        addr = NodeAddress((5, 2, 1))
        assert addr.prefix(1) == (5, 2)
        assert addr.prefix(2) == (5,)
        assert addr.prefix(3) == ()

    def test_prefix_out_of_range(self):
        with pytest.raises(ValueError):
            NodeAddress((1, 0)).prefix(3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            NodeAddress(())


class TestSwitchAddress:
    def test_column_length_must_match_level(self):
        with pytest.raises(ValueError):
            SwitchAddress(level=3, prefix=(1,), column=(0,))

    def test_root_detection(self):
        assert SwitchAddress(level=2, prefix=(), column=(0,)).is_root
        assert not SwitchAddress(level=1, prefix=(3,), column=()).is_root


class TestRoundtrip:
    @given(tree_params, st.data())
    def test_index_address_roundtrip(self, params, data):
        q, n = params
        total = 2 * q**n
        index = data.draw(st.integers(0, total - 1))
        addr = node_address_from_index(index, radix=q, depth=n)
        assert addr.depth == n
        assert 0 <= addr.top_digit < 2 * q
        assert all(0 <= d < q for d in addr.digits[1:])
        assert node_index_from_address(addr, radix=q) == index

    @given(tree_params)
    def test_all_addresses_distinct(self, params):
        q, n = params
        total = 2 * q**n
        seen = {node_address_from_index(i, radix=q, depth=n).digits for i in range(total)}
        assert len(seen) == total

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            node_address_from_index(8, radix=2, depth=1)

    def test_bad_digit_rejected(self):
        with pytest.raises(ValueError):
            node_index_from_address(NodeAddress((1, 9)), radix=2)
