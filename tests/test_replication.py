"""Replication/CI tests (simulation.replication)."""

import pytest

from repro.simulation import MeasurementWindow, replica_seeds, replicate


class TestReplicate:
    def test_summary_statistics(self, small_session):
        rep = replicate(
            small_session,
            1e-3,
            replicas=4,
            base_seed=10,
            window=MeasurementWindow(100, 800, 100),
        )
        means = [r.mean_latency for r in rep.replicas]
        assert rep.mean_latency == pytest.approx(sum(means) / 4)
        assert rep.ci_half_width > 0
        assert rep.ci_low < rep.mean_latency < rep.ci_high

    def test_seeds_are_spawned_not_sequential(self, small_session):
        rep = replicate(
            small_session,
            1e-3,
            replicas=3,
            base_seed=0,
            window=MeasurementWindow(50, 500, 50),
        )
        assert rep.seeds == replica_seeds(0, 3)
        # Never base_seed + i arithmetic: that aliases overlapping bases.
        assert rep.seeds != (0, 1, 2)
        assert len(set(rep.seeds)) == 3
        assert len({r.mean_latency for r in rep.replicas}) == 3

    def test_overlapping_bases_share_no_replica_stream(self):
        """The regression seed+i reintroduces: seeds(0)[1] == seeds(1)[0]."""
        assert not set(replica_seeds(0, 4)) & set(replica_seeds(1, 4))
        assert replica_seeds(7, 4) == replica_seeds(7, 4)  # deterministic

    def test_throughput_accounting(self, small_session):
        rep = replicate(
            small_session, 1e-3, replicas=3, base_seed=0, window=MeasurementWindow(50, 400, 50)
        )
        assert rep.events == sum(r.events for r in rep.replicas)
        assert rep.wall_seconds == max(r.wall_seconds for r in rep.replicas)
        assert rep.elapsed_seconds >= rep.wall_seconds
        assert rep.events_per_second > 0

    def test_more_messages_tighten_ci(self, small_session):
        small = replicate(
            small_session, 1e-3, replicas=3, base_seed=1, window=MeasurementWindow(50, 400, 50)
        )
        large = replicate(
            small_session, 1e-3, replicas=3, base_seed=1, window=MeasurementWindow(200, 4000, 200)
        )
        assert large.relative_half_width < small.relative_half_width

    def test_ci_contains_model_prediction_at_light_load(self, small_system, small_message, small_session):
        """At light load the model sits within (a slightly widened) CI."""
        from repro.core import AnalyticalModel

        rep = replicate(
            small_session,
            3e-4,
            replicas=5,
            base_seed=3,
            window=MeasurementWindow(200, 2000, 200),
            confidence=0.99,
        )
        predicted = AnalyticalModel(small_system, small_message).evaluate(3e-4).latency
        # The model carries a small systematic bias; allow CI + 10 %.
        assert rep.ci_low * 0.9 <= predicted <= rep.ci_high * 1.1

    def test_contains_helper(self, small_session):
        rep = replicate(
            small_session, 1e-3, replicas=2, base_seed=5, window=MeasurementWindow(50, 400, 50)
        )
        assert rep.contains(rep.mean_latency)
        assert not rep.contains(rep.ci_high + 1.0)

    def test_requires_two_replicas(self, small_session):
        with pytest.raises(ValueError):
            replicate(small_session, 1e-3, replicas=1)

    def test_rejects_bad_confidence(self, small_session):
        with pytest.raises(ValueError):
            replicate(small_session, 1e-3, replicas=2, confidence=1.0)
