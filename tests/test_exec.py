"""Unit tests for the supervised execution runtime (``repro.exec``).

Pooled tests here spawn real process pools, so each one keeps its
payload list tiny; the deterministic fault plans (armed through the
``REPRO_FAULTS`` environment, which forked workers inherit) make worker
crashes, hangs and raises exactly reproducible.
"""

import json
import subprocess

import pytest

from repro.exec import (
    FAULTS_ENV,
    OUTCOME_FAILED,
    OUTCOME_OK,
    ExecutionFailed,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    ItemOutcome,
    RunJournal,
    RunPolicy,
    armed_plan,
    corrupt_cache_entry,
    fire,
    raise_on_failure,
    resolve_jobs,
    run_supervised,
)
from repro.io.cache import ResultCache


def _double(payload):
    return payload * 2


def _boom(payload):
    raise ValueError(f"boom {payload}")


def _arm(monkeypatch, *faults):
    plan = {"schema": "repro.faults/1", "faults": [dict(f) for f in faults]}
    monkeypatch.setenv(FAULTS_ENV, json.dumps(plan))


class TestRunPolicy:
    def test_defaults_round_trip(self):
        policy = RunPolicy()
        assert RunPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="run policy"):
            RunPolicy.from_dict({"max_retries": 1, "retries": 2})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"max_retries": True},
            {"timeout": 0},
            {"timeout": -2.0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"seed": -3},
            {"pool_restarts": -1},
            {"degrade_serial": 1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RunPolicy(**kwargs)

    def test_backoff_is_deterministic_and_capped(self):
        policy = RunPolicy(backoff_base=1.0, backoff_factor=2.0, backoff_max=3.0, seed=7)
        first = policy.backoff_delay(4, 1)
        assert first == policy.backoff_delay(4, 1)
        assert 0.5 <= first < 1.5  # base x jitter in [0.5, 1.5)
        assert policy.backoff_delay(4, 10) == 3.0  # capped
        assert policy.backoff_delay(4, 1) != policy.backoff_delay(5, 1)

    def test_backoff_disabled_cases(self):
        assert RunPolicy().backoff_delay(0, 5) == 0.0  # base defaults to 0
        assert RunPolicy(backoff_base=1.0).backoff_delay(0, 0) == 0.0  # first run


class TestSerialExecution:
    def test_values_in_submission_order(self):
        outcomes = run_supervised(_double, [3, 1, 2], jobs=1)
        assert [o.value for o in outcomes] == [6, 2, 4]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_retry_recovers_a_transient_fault(self, monkeypatch):
        _arm(monkeypatch, {"op": "raise", "index": 1, "attempt": 0})
        outcomes = run_supervised(_double, [3, 1, 2], jobs=1)
        assert [o.value for o in outcomes] == [6, 2, 4]
        assert [o.attempts for o in outcomes] == [1, 2, 1]

    def test_exhausted_retries_keep_the_original_exception(self):
        outcomes = run_supervised(_boom, [9], jobs=1, policy=RunPolicy(max_retries=1))
        (outcome,) = outcomes
        assert outcome.status == OUTCOME_FAILED
        assert outcome.attempts == 2
        assert "boom 9" in outcome.error
        with pytest.raises(ValueError, match="boom 9"):
            raise_on_failure(outcomes)

    def test_on_result_sees_every_item_once(self):
        seen = {}
        run_supervised(
            _double, [5, 6], jobs=1, on_result=lambda i, o: seen.setdefault(i, o)
        )
        assert sorted(seen) == [0, 1]
        assert all(seen[i].ok for i in seen)

    def test_raise_on_failure_without_exception_object(self):
        outcome = ItemOutcome(index=0, status="timeout", attempts=3, error="timed out")
        with pytest.raises(ExecutionFailed, match="timed out"):
            raise_on_failure([outcome])


class TestPooledExecution:
    def test_pool_matches_serial(self):
        serial = run_supervised(_double, list(range(6)), jobs=1)
        pooled = run_supervised(_double, list(range(6)), jobs=2)
        assert pooled == serial

    def test_worker_crash_respawns_and_retries(self, monkeypatch):
        _arm(monkeypatch, {"op": "crash", "index": 0, "attempt": 0})
        outcomes = run_supervised(_double, [3, 1, 2, 4], jobs=2)
        assert [o.value for o in outcomes] == [6, 2, 4, 8]
        assert outcomes[0].attempts >= 2  # the crashed attempt was charged

    def test_hung_item_times_out_and_retries(self, monkeypatch):
        _arm(monkeypatch, {"op": "hang", "index": 0, "attempt": 0, "seconds": 30.0})
        outcomes = run_supervised(
            _double, [3, 1], jobs=2, policy=RunPolicy(timeout=0.5)
        )
        assert [o.value for o in outcomes] == [6, 2]
        assert outcomes[0].attempts >= 2

    def test_exhausted_restarts_degrade_to_serial(self, monkeypatch):
        _arm(monkeypatch, {"op": "crash", "index": 0, "attempt": 0})
        outcomes = run_supervised(
            _double, [3, 1], jobs=2, policy=RunPolicy(pool_restarts=0)
        )
        assert [o.value for o in outcomes] == [6, 2]

    def test_exhausted_restarts_without_degrade_fail_the_items(self, monkeypatch):
        # Both items crash on every attempt, so the run can never finish:
        # the pool breaks, restarts are exhausted, and with degradation
        # off both items must resolve to failed outcomes.
        _arm(
            monkeypatch,
            *[{"op": "crash", "index": i, "attempt": a} for i in (0, 1) for a in range(4)],
        )
        outcomes = run_supervised(
            _double, [3, 1], jobs=2,
            policy=RunPolicy(pool_restarts=0, degrade_serial=False),
        )
        assert [o.status for o in outcomes] == [OUTCOME_FAILED, OUTCOME_FAILED]
        assert all("pool" in o.error for o in outcomes)

    def test_single_payload_runs_serially(self, monkeypatch):
        # The pool never exceeds the payload count, so a crash fault on a
        # one-item run raises (serial semantics) and is retried in-process.
        _arm(monkeypatch, {"op": "crash", "index": 0, "attempt": 0})
        (outcome,) = run_supervised(_double, [3], jobs=2)
        assert outcome.ok and outcome.value == 6 and outcome.attempts == 2

    def test_resolve_jobs_reexport(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3


class TestFaultPlans:
    def test_unarmed_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert armed_plan() is None
        fire(0, 0)  # must not raise

    def test_inline_and_file_sources_agree(self, tmp_path):
        payload = {
            "schema": "repro.faults/1",
            "faults": [{"op": "raise", "index": 2, "attempt": 1}],
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(payload))
        assert FaultPlan.load(json.dumps(payload)) == FaultPlan.load(str(path))

    def test_match_is_exact_and_fire_raises(self, monkeypatch):
        plan = FaultPlan.from_dict(
            {"schema": "repro.faults/1", "faults": [{"op": "raise", "index": 1}]}
        )
        assert plan.match(1, 0) is not None
        assert plan.match(1, 1) is None
        assert plan.match(0, 0) is None
        _arm(monkeypatch, {"op": "raise", "index": 1, "attempt": 0})
        fire(0, 0)  # unmatched (index differs): no-op
        fire(1, 1)  # unmatched (attempt differs): no-op
        with pytest.raises(FaultInjected):
            fire(1, 0)

    def test_corrupt_cache_fault_is_not_an_execution_fault(self):
        plan = FaultPlan.from_dict(
            {
                "schema": "repro.faults/1",
                "faults": [{"op": "corrupt-cache", "index": 0}],
            }
        )
        assert plan.match(0, 0) is None  # never fires during execution
        assert plan.corrupts_cache(0)
        assert not plan.corrupts_cache(1)

    def test_bad_specs_are_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(op="explode", index=0)
        with pytest.raises(ValueError):
            FaultSpec.from_dict({"op": "raise", "index": 0, "bogus": 1})
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"schema": "other/1", "faults": []})

    def test_corrupt_cache_entry_poisons_the_stored_json(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        key = "ab" + "0" * 62
        store.put(key, {"x": 1})
        assert store.get(key) == {"x": 1}
        corrupt_cache_entry(store, key)
        assert store.get(key) is None  # corrupt entry reads as a miss


class TestRunJournal:
    def test_record_and_replay(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        assert not journal.exists()
        assert journal.completed_keys() == set()
        journal.record("k1", cell="a")
        journal.record("k2")
        journal.record("k1")  # duplicate: must not append a second line
        assert journal.completed_keys() == {"k1", "k2"}
        lines = (tmp_path / "run.jsonl").read_text().splitlines()
        assert len(lines) == 2
        fresh = RunJournal(tmp_path / "run.jsonl")
        assert fresh.completed_keys() == {"k1", "k2"}

    def test_torn_and_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("k1")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "other/1", "key": "k2"}\n')
            handle.write('{"schema": "repro.run-journal/1", "key"')  # torn write
        assert RunJournal(path).completed_keys() == {"k1"}

    def test_for_cache_lives_beside_the_entries(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        journal = RunJournal.for_cache(store, "deadbeef")
        assert journal.path == tmp_path / "cache" / "journal" / "deadbeef.jsonl"


class TestCacheDurability:
    def test_put_survives_reload(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        key = "cd" + "1" * 62
        store.put(key, {"rows": [1, 2]})
        assert ResultCache(tmp_path / "cache").get(key) == {"rows": [1, 2]}

    def test_open_sweeps_tmp_files_of_dead_writers(self, tmp_path):
        root = tmp_path / "cache"
        shard = root / "ab"
        shard.mkdir(parents=True)
        proc = subprocess.Popen(["true"])
        proc.wait()
        dead = shard / f".abc.json.{proc.pid}.tmp"
        dead.write_text("torn")
        alive = shard / f".def.json.{__import__('os').getpid()}.tmp"
        alive.write_text("in-flight")
        unrelated = shard / "notatmp.json"
        unrelated.write_text("{}")
        ResultCache(root)
        assert not dead.exists()  # dead writer's leftover swept
        assert alive.exists()  # live writer untouched
        assert unrelated.exists()
