"""Closed-form combinatorics tests (core.topology_math vs paper Eqs. 6, 8, 9)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    journey_length_pmf,
    mean_journey_links,
    mean_journey_links_closed_form,
    nca_level_counts,
    num_nodes,
    num_switches,
    num_unidirectional_channels,
    radix,
    switches_per_level,
)

tree_params = st.tuples(st.sampled_from([4, 6, 8, 10]), st.integers(1, 5))


class TestCounts:
    @pytest.mark.parametrize("m,n,expected", [(8, 1, 8), (8, 2, 32), (8, 3, 128), (4, 5, 64)])
    def test_num_nodes_paper_values(self, m, n, expected):
        assert num_nodes(m, n) == expected

    @pytest.mark.parametrize("m,n,expected", [(8, 1, 1), (4, 3, 20), (8, 3, 80)])
    def test_num_switches(self, m, n, expected):
        assert num_switches(m, n) == expected

    @given(tree_params)
    def test_switch_levels_sum_to_total(self, params):
        m, n = params
        assert sum(switches_per_level(m, n)) == num_switches(m, n)

    @given(tree_params)
    def test_channel_count_formula(self, params):
        m, n = params
        assert num_unidirectional_channels(m, n) == 4 * n * num_nodes(m, n)

    def test_radix(self):
        assert radix(8) == 4
        with pytest.raises(ValueError):
            radix(7)


class TestJourneyPmf:
    @given(tree_params)
    def test_pmf_sums_to_one(self, params):
        m, n = params
        assert journey_length_pmf(m, n).sum() == pytest.approx(1.0)

    @given(tree_params)
    def test_counts_sum_to_population(self, params):
        m, n = params
        assert nca_level_counts(m, n).sum() == num_nodes(m, n) - 1

    def test_eq6_values_m8_n3(self):
        # q=4, N=128: P(1)=3/127, P(2)=12/127, P(3)=16*7/127
        pmf = journey_length_pmf(8, 3)
        assert pmf[0] == pytest.approx(3 / 127)
        assert pmf[1] == pytest.approx(12 / 127)
        assert pmf[2] == pytest.approx(112 / 127)

    def test_depth_one_tree_is_all_root(self):
        pmf = journey_length_pmf(8, 1)
        assert pmf.shape == (1,)
        assert pmf[0] == pytest.approx(1.0)

    @given(tree_params)
    def test_pmf_nonnegative(self, params):
        m, n = params
        assert np.all(journey_length_pmf(m, n) >= 0)


class TestMeanDistance:
    @given(tree_params)
    def test_closed_form_matches_sum(self, params):
        m, n = params
        assert mean_journey_links_closed_form(m, n) == pytest.approx(mean_journey_links(m, n))

    @given(tree_params)
    def test_bounds(self, params):
        m, n = params
        d = mean_journey_links(m, n)
        assert 2.0 <= d <= 2.0 * n

    def test_root_heavy_distribution_pushes_mean_high(self):
        # Most destinations cross the root, so D is close to 2n.
        assert mean_journey_links(8, 3) > 0.9 * 6

    @given(st.sampled_from([4, 6, 8]))
    def test_monotone_in_depth(self, m):
        values = [mean_journey_links(m, n) for n in range(1, 6)]
        assert all(a < b for a, b in zip(values, values[1:]))
