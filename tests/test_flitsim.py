"""Flit-level simulator tests and cross-engine agreement (simulation.flitsim)."""

import pytest

from repro.simulation import MeasurementWindow, MessageLevelWormholeSimulator, make_streams
from repro.simulation.flitsim import FlitLevelSimulator

from tests.test_wormhole_sim import isolated_message_latency


class TestIsolatedMessage:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_single_message_matches_message_level_exactly(self, small_fabric, seed):
        """For an uncontended journey the analytic drain is flit-exact."""
        window = MeasurementWindow(warmup=0, measured=1, drain=0)
        msg_level = MessageLevelWormholeSimulator(small_fabric, window, 1e-3, make_streams(seed)).run()
        flit_level = FlitLevelSimulator(small_fabric, window, 1e-3, make_streams(seed)).run()
        assert flit_level.stats.mean == pytest.approx(msg_level.stats.mean, rel=1e-12)

    @pytest.mark.parametrize("cd_mode", ["paper", "store_and_forward"])
    def test_single_message_closed_form(self, small_fabric, cd_mode):
        window = MeasurementWindow(warmup=0, measured=1, drain=0)
        result = FlitLevelSimulator(
            small_fabric, window, 1e-3, make_streams(4), cd_mode=cd_mode
        ).run()
        m = small_fabric.message.length_flits
        candidates = []
        n = small_fabric.system.total_nodes
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                segs = small_fabric.resolve(src, dst)
                if cd_mode == "paper":
                    candidates.append(isolated_message_latency(small_fabric, segs, m))
                else:
                    # store-and-forward: every segment drains fully.
                    total = 0.0
                    for seg in segs:
                        total += sum(small_fabric.flit_time[c] for c in seg.channel_ids)
                        total += (m - 1) * seg.bottleneck_flit_time
                    candidates.append(total)
        assert any(abs(result.stats.mean - c) < 1e-6 for c in candidates)


class TestCrossEngineAgreement:
    @pytest.mark.parametrize("cd_mode", ["paper", "store_and_forward"])
    def test_light_load_agreement(self, small_fabric, cd_mode):
        """At light load contention is rare: engines agree closely."""
        window = MeasurementWindow(warmup=200, measured=1500, drain=200)
        msg_level = MessageLevelWormholeSimulator(
            small_fabric, window, 2e-4, make_streams(21), cd_mode=cd_mode
        ).run()
        flit_level = FlitLevelSimulator(
            small_fabric, window, 2e-4, make_streams(21), cd_mode=cd_mode
        ).run()
        assert flit_level.stats.mean == pytest.approx(msg_level.stats.mean, rel=0.02)

    def test_moderate_load_agreement_within_tolerance(self, small_fabric):
        """The analytic drain is an approximation; certify it within 10 %."""
        window = MeasurementWindow(warmup=200, measured=1500, drain=200)
        msg_level = MessageLevelWormholeSimulator(small_fabric, window, 2e-3, make_streams(22)).run()
        flit_level = FlitLevelSimulator(small_fabric, window, 2e-3, make_streams(22)).run()
        assert flit_level.stats.mean == pytest.approx(msg_level.stats.mean, rel=0.10)


class TestFlitEngineBasics:
    def test_deterministic(self, small_fabric):
        window = MeasurementWindow(warmup=50, measured=400, drain=50)
        a = FlitLevelSimulator(small_fabric, window, 1e-3, make_streams(9)).run()
        b = FlitLevelSimulator(small_fabric, window, 1e-3, make_streams(9)).run()
        assert a.stats.mean == b.stats.mean

    def test_all_measured_delivered(self, small_fabric):
        window = MeasurementWindow(warmup=50, measured=400, drain=50)
        result = FlitLevelSimulator(small_fabric, window, 1e-3, make_streams(10)).run()
        assert result.completed
        assert result.stats.count == 400

    def test_more_events_than_message_level(self, small_fabric, fast_window):
        window = MeasurementWindow(warmup=50, measured=300, drain=50)
        msg_level = MessageLevelWormholeSimulator(small_fabric, window, 1e-3, make_streams(11)).run()
        flit_level = FlitLevelSimulator(small_fabric, window, 1e-3, make_streams(11)).run()
        assert flit_level.events > 5 * msg_level.events

    def test_unknown_cd_mode_rejected(self, small_fabric, fast_window):
        with pytest.raises(ValueError):
            FlitLevelSimulator(small_fabric, fast_window, 1e-3, make_streams(0), cd_mode="bogus")
