"""Message-level wormhole simulator tests (simulation.wormhole).

Determinism/conservation tests run against the public
:meth:`~repro.simulation.wormhole.MessageLevelWormholeSimulator.trajectory`
accessor and are parametrized over both event engines, so the reference
loop and the compiled array core share one test surface (the ``array``
cases fall back to the reference loop on hosts without a C compiler —
bit-identical either way, which is itself under test in
``test_eventcore.py``).
"""

import numpy as np
import pytest

from repro.simulation import (
    ENGINES,
    MeasurementWindow,
    MessageLevelWormholeSimulator,
    make_streams,
)


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


def isolated_message_latency(fabric, segments, m_flits):
    """Closed form for an uncontended journey: per segment the header
    accumulates hop times and the drain adds (M-1)·τ_max (paper cd_mode)."""
    total = 0.0
    for seg in segments:
        total += sum(fabric.flit_time[c] for c in seg.channel_ids)
    total += (m_flits - 1) * segments[-1].bottleneck_flit_time
    return total


class TestIsolatedMessage:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_single_message_matches_closed_form(self, small_fabric, seed):
        window = MeasurementWindow(warmup=0, measured=1, drain=0)
        sim = MessageLevelWormholeSimulator(small_fabric, window, 1e-3, make_streams(seed))
        result = sim.run()
        assert result.completed
        observed = result.stats.mean
        m = small_fabric.message.length_flits
        candidates = set()
        n = small_fabric.system.total_nodes
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                candidates.add(round(isolated_message_latency(small_fabric, small_fabric.resolve(src, dst), m), 9))
        assert any(abs(observed - c) < 1e-6 for c in candidates)

    def test_single_message_zero_waits(self, small_fabric):
        window = MeasurementWindow(warmup=0, measured=1, drain=0)
        sim = MessageLevelWormholeSimulator(small_fabric, window, 1e-3, make_streams(0))
        result = sim.run()
        assert result.source_wait_mean == pytest.approx(0.0)


class TestDeterminismAndConservation:
    def test_same_seed_same_trajectory(self, small_fabric, fast_window, engine):
        sims = [
            MessageLevelWormholeSimulator(
                small_fabric, fast_window, 5e-4, make_streams(11), engine=engine
            )
            for _ in range(2)
        ]
        for sim in sims:
            sim.run()
        assert sims[0].trajectory() == sims[1].trajectory()

    def test_different_seed_different_trajectory(self, small_fabric, fast_window, engine):
        sims = [
            MessageLevelWormholeSimulator(
                small_fabric, fast_window, 5e-4, make_streams(seed), engine=engine
            )
            for seed in (1, 2)
        ]
        for sim in sims:
            sim.run()
        assert sims[0].trajectory() != sims[1].trajectory()
        assert sims[0].trajectory().latencies != sims[1].trajectory().latencies

    def test_all_measured_messages_delivered(self, small_fabric, fast_window, engine):
        sim = MessageLevelWormholeSimulator(
            small_fabric, fast_window, 5e-4, make_streams(3), engine=engine
        )
        result = sim.run()
        assert result.completed
        assert result.stats.count == fast_window.measured
        traj = sim.trajectory()
        assert traj.completed
        assert len(traj.latencies) == fast_window.measured
        assert len(traj.inter_cluster) == len(traj.latencies) == len(traj.source_clusters)

    def test_event_budget_interrupts(self, small_fabric, fast_window, engine):
        sim = MessageLevelWormholeSimulator(
            small_fabric, fast_window, 5e-4, make_streams(3), engine=engine
        )
        result = sim.run(max_events=100)
        assert not result.completed
        assert result.events <= 100
        assert sim.trajectory().events == result.events


class TestLoadResponse:
    def test_latency_increases_with_load(self, small_fabric, fast_window):
        means = [
            MessageLevelWormholeSimulator(small_fabric, fast_window, lam, make_streams(5)).run().stats.mean
            for lam in (1e-4, 2e-3, 6e-3)
        ]
        assert means[0] < means[1] < means[2]

    def test_group_utilizations_valid(self, small_session, fast_window):
        result = small_session.run(2e-3, seed=6, window=fast_window)
        for group, util in result.network_utilization.items():
            assert 0.0 <= util <= 1.0, group

    def test_utilization_scales_with_load(self, small_session, fast_window):
        low = small_session.run(5e-4, seed=6, window=fast_window)
        high = small_session.run(2e-3, seed=6, window=fast_window)
        assert high.network_utilization["cd-concentrate"] > low.network_utilization["cd-concentrate"]


class TestSemanticsOptions:
    def test_store_and_forward_slower_than_cut_through(self, small_session, fast_window):
        paper = small_session.run(3e-4, seed=7, window=fast_window, cd_mode="paper")
        snf = small_session.run(3e-4, seed=7, window=fast_window, cd_mode="store_and_forward")
        assert snf.stats.mean_inter > paper.stats.mean_inter * 1.5
        # Intra traffic has no concentrators: unchanged semantics.
        assert snf.stats.mean_intra == pytest.approx(paper.stats.mean_intra, rel=0.05)

    def test_ideal_sinks_never_slower(self, small_session, fast_window):
        real = small_session.run(3e-3, seed=8, window=fast_window)
        ideal = small_session.run(3e-3, seed=8, window=fast_window, ideal_sinks=True)
        assert ideal.stats.mean <= real.stats.mean * 1.05

    def test_unknown_cd_mode_rejected(self, small_fabric, fast_window):
        with pytest.raises(ValueError):
            MessageLevelWormholeSimulator(
                small_fabric, fast_window, 1e-3, make_streams(0), cd_mode="bogus"
            )


class TestStatsPlumbing:
    def test_intra_and_inter_populations(self, small_session, fast_window):
        result = small_session.run(1e-3, seed=9, window=fast_window)
        stats = result.stats
        assert stats.count_intra + stats.count_inter == stats.count
        # 4 clusters of 8: inter fraction should be near U = 1 - 7/31.
        inter_fraction = stats.count_inter / stats.count
        assert inter_fraction == pytest.approx(1 - 7 / 31, abs=0.05)

    def test_per_cluster_means_cover_all_clusters(self, small_session, fast_window):
        result = small_session.run(1e-3, seed=9, window=fast_window)
        assert set(result.per_cluster_means) == {0, 1, 2, 3}

    def test_inter_slower_than_intra(self, small_session, fast_window):
        result = small_session.run(1e-3, seed=9, window=fast_window)
        assert result.stats.mean_inter > result.stats.mean_intra
