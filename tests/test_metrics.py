"""Measurement-protocol tests (simulation.metrics vs paper §4)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulation import LatencyCollector, MeasurementWindow


class TestWindow:
    def test_paper_protocol_scaling(self):
        w = MeasurementWindow.scaled_paper(100_000)
        assert (w.warmup, w.measured, w.drain) == (10_000, 100_000, 10_000)

    def test_window_membership(self):
        w = MeasurementWindow(warmup=10, measured=5, drain=3)
        assert not w.is_measured(9)
        assert w.is_measured(10)
        assert w.is_measured(14)
        assert not w.is_measured(15)
        assert w.total == 18

    def test_rejects_zero_measured(self):
        with pytest.raises(ValueError):
            MeasurementWindow(warmup=0, measured=0, drain=0)

    @given(st.integers(1, 10_000))
    def test_scaled_total(self, budget):
        w = MeasurementWindow.scaled_paper(budget)
        assert w.total == budget + 2 * max(1, budget // 10)


class TestCollector:
    def make(self):
        return LatencyCollector(MeasurementWindow(warmup=2, measured=4, drain=1))

    def test_warmup_and_drain_excluded(self):
        c = self.make()
        for seq in range(7):
            c.record(seq, 10.0 + seq, inter_cluster=False, source_cluster=0)
        stats = c.stats()
        assert stats.count == 4
        assert stats.mean == pytest.approx(np.mean([12.0, 13.0, 14.0, 15.0]))

    def test_all_measured_delivered_flag(self):
        c = self.make()
        assert not c.all_measured_delivered
        for seq in range(2, 6):
            c.record(seq, 1.0, inter_cluster=True, source_cluster=0)
        assert c.all_measured_delivered

    def test_intra_inter_split(self):
        c = self.make()
        c.record(2, 10.0, inter_cluster=False, source_cluster=0)
        c.record(3, 30.0, inter_cluster=True, source_cluster=1)
        stats = c.stats()
        assert stats.mean_intra == pytest.approx(10.0)
        assert stats.mean_inter == pytest.approx(30.0)
        assert (stats.count_intra, stats.count_inter) == (1, 1)

    def test_per_cluster_means(self):
        c = self.make()
        c.record(2, 10.0, inter_cluster=False, source_cluster=0)
        c.record(3, 20.0, inter_cluster=False, source_cluster=0)
        c.record(4, 40.0, inter_cluster=True, source_cluster=2)
        assert c.per_cluster_means() == {0: pytest.approx(15.0), 2: pytest.approx(40.0)}

    def test_empty_stats_are_nan(self):
        stats = self.make().stats()
        assert stats.count == 0
        assert np.isnan(stats.mean)

    def test_percentiles(self):
        c = LatencyCollector(MeasurementWindow(0, 100, 0))
        for seq in range(100):
            c.record(seq, float(seq), inter_cluster=False, source_cluster=0)
        stats = c.stats()
        assert stats.p50 == pytest.approx(49.5)
        assert stats.p95 == pytest.approx(94.05)
        assert stats.minimum == 0.0
        assert stats.maximum == 99.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            self.make().record(2, -1.0, inter_cluster=False, source_cluster=0)
