"""Reproduction-report tests (validation.report + CLI report command)."""

import pytest

from repro.validation import reproduction_report


class TestModelOnlyReport:
    @pytest.fixture(scope="class")
    def report(self):
        return reproduction_report(points_per_curve=3, include_simulation=False)

    def test_contains_all_sections(self, report):
        for marker in (
            "Table 1",
            "Table 2",
            "Fig.3",
            "Fig.4",
            "Fig.5",
            "Fig.6",
            "ICN2 bandwidth study",
            "Bottleneck audit",
        ):
            assert marker in report.text, marker

    def test_payload_has_every_figure_curve(self, report):
        figure_keys = [k for k in report.payload if k.startswith("Fig.")]
        # 4 figures x 2 flit sizes
        assert len(figure_keys) == 8

    def test_model_only_has_no_accuracy_stats(self, report):
        assert report.light_load_mean_abs_error != report.light_load_mean_abs_error  # NaN

    def test_bottleneck_rows_name_concentrators(self, report):
        for row in report.payload["bottlenecks"]:
            assert row[3] == "concentrator"


class TestSimulationReport:
    def test_small_simulated_report(self):
        report = reproduction_report(
            messages_per_point=400, points_per_curve=2, include_simulation=True
        )
        assert "simulation" in report.text
        assert report.light_load_max_abs_error == report.light_load_max_abs_error  # not NaN
        # Short windows are noisy: accept a generous band here; the bench
        # asserts the tight one at full message counts.
        assert report.within_paper_band(band=0.30)

    def test_rejects_tiny_budget(self):
        with pytest.raises(ValueError):
            reproduction_report(messages_per_point=10)


class TestCliReport:
    def test_model_only_via_cli(self, capsys):
        from repro.cli import main

        code = main(["report", "--model-only", "--points", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in out and "Fig.6" in out
