"""Performability subsystem tests (spec, CTMC math, degradation, metrics).

Locks the subsystem's contracts: JSON-round-trippable failure scenarios,
a birth-death availability chain that matches closed forms and hand
enumeration, hard boundary validation of degraded-state construction, and
availability-weighted metrics that are bit-identical across worker counts
and cache replays.
"""

import json

import pytest

from repro.cluster import homogeneous_system
from repro.experiments import Experiment
from repro.io import ResultCache, to_jsonable
from repro.performability import (
    FailureMode,
    FailureScenario,
    enumerate_states,
    expand_states,
    mode_population,
    performability_analysis,
    resolve_populations,
    state_cache_key,
    state_label,
    steady_state,
    two_state_availability,
)
from repro.scenarios import ScenarioSpec, get_scenario


def canonical(payload) -> str:
    """Bit-stable text form (NaN-safe) for table-equality assertions."""
    return json.dumps(to_jsonable(payload), sort_keys=True)


def node_mode(**kw):
    kw.setdefault("failure_rate", 1e-4)
    kw.setdefault("repair_rate", 1e-2)
    return FailureMode(kind="node", **kw)


def icn2_switch_mode(**kw):
    kw.setdefault("failure_rate", 1e-5)
    kw.setdefault("repair_rate", 1e-2)
    return FailureMode(kind="switch", role="icn2", **kw)


def icn2_link_mode(**kw):
    kw.setdefault("failure_rate", 1e-5)
    kw.setdefault("repair_rate", 1e-2)
    return FailureMode(kind="link", role="icn2", **kw)


@pytest.fixture(scope="module")
def base_544():
    return get_scenario("544")


@pytest.fixture(scope="module")
def acceptance_failures():
    """The ISSUE's acceptance spec: node + switch + link churn on 544."""
    return FailureScenario(
        modes=(node_mode(), icn2_switch_mode(), icn2_link_mode()),
        max_concurrent=2,
        name="acceptance",
    )


class TestFailureSpec:
    def test_round_trip_dict_json_file(self, acceptance_failures, tmp_path):
        scenario = acceptance_failures
        assert FailureScenario.from_dict(scenario.to_dict()) == scenario
        assert FailureScenario.from_json(scenario.to_json()) == scenario
        path = scenario.save(tmp_path / "f.json")
        assert FailureScenario.load(path) == scenario

    def test_schema_tag_present_and_enforced(self, acceptance_failures):
        data = acceptance_failures.to_dict()
        assert data["schema"] == "repro.performability/1"
        data["schema"] = "repro.performability/99"
        with pytest.raises(ValueError, match="unsupported failure-scenario schema"):
            FailureScenario.from_dict(data)

    def test_labels_derived_and_unique(self):
        mode = FailureMode(
            kind="link", role="icn1", cluster=2, level=1,
            failure_rate=0.0, repair_rate=0.0,
        )
        assert mode.label == "icn1-link-c2-L1"
        assert node_mode(name="flaky").label == "flaky"
        with pytest.raises(ValueError, match="labels must be unique"):
            FailureScenario(modes=(node_mode(), node_mode()))

    def test_with_rates_zeroed(self, acceptance_failures):
        zeroed = acceptance_failures.with_rates_zeroed()
        assert all(m.failure_rate == 0.0 for m in zeroed.modes)
        assert zeroed.labels == acceptance_failures.labels

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(kind="router", failure_rate=1e-4, repair_rate=1e-2),
             "failure kind"),
            (dict(kind="node", role="icn2", failure_rate=1e-4, repair_rate=1e-2),
             "no network role"),
            (dict(kind="switch", failure_rate=1e-4, repair_rate=1e-2),
             "need a network role"),
            (dict(kind="switch", role="icn1", failure_rate=1e-4, repair_rate=1e-2),
             "need a cluster index"),
            (dict(kind="switch", role="icn2", cluster=0,
                  failure_rate=1e-4, repair_rate=1e-2),
             "cluster must be None"),
            (dict(kind="node", failure_rate=1e-4, repair_rate=0.0),
             "repair_rate must be positive"),
            (dict(kind="node", failure_rate=-1.0, repair_rate=1e-2),
             "finite non-negative"),
            (dict(kind="ports", role="icn2", failure_rate=1e-4, repair_rate=1e-2),
             "fraction"),
            (dict(kind="node", fraction=0.5, failure_rate=1e-4, repair_rate=1e-2),
             "only applies to ports"),
            (dict(kind="node", count=0, failure_rate=1e-4, repair_rate=1e-2),
             "count"),
        ],
    )
    def test_mode_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FailureMode(**kwargs)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FailureMode.from_dict(
                {"kind": "node", "failure_rate": 1e-4,
                 "repair_rate": 1e-2, "mtbf": 1e4}
            )
        with pytest.raises(ValueError, match="unknown"):
            FailureScenario.from_dict(
                {"modes": [{"kind": "node", "failure_rate": 0.0,
                            "repair_rate": 0.0}], "burst": True}
            )

    def test_needs_at_least_one_mode(self):
        with pytest.raises(ValueError, match="at least one mode"):
            FailureScenario(modes=())


class TestAvailabilityMath:
    def test_ctmc_matches_two_state_closed_form(self):
        # One repairable unit: pi_up must equal MTBF / (MTBF + MTTR).
        failure, repair = 1e-4, 1e-2
        scenario = FailureScenario(
            modes=(node_mode(failure_rate=failure, repair_rate=repair),)
        )
        probs = steady_state(scenario, (1,))
        expected = two_state_availability(1.0 / failure, 1.0 / repair)
        assert probs[0] == pytest.approx(expected, rel=1e-12)
        assert probs[1] == pytest.approx(1.0 - expected, rel=1e-12)

    def test_ctmc_matches_hand_enumerated_three_state_chain(self):
        # Machine-repairman with 2 units, independent repair:
        # birth (2-k)f, death k*r, so pi_1/pi_0 = 2f/r, pi_2/pi_0 = f^2/r^2.
        f, r = 0.003, 0.1
        scenario = FailureScenario(
            modes=(node_mode(failure_rate=f, repair_rate=r, count=2),)
        )
        probs = steady_state(scenario, (2,))
        norm = 1.0 + 2.0 * f / r + (f / r) ** 2
        assert probs[0] == pytest.approx(1.0 / norm, rel=1e-12)
        assert probs[1] == pytest.approx((2.0 * f / r) / norm, rel=1e-12)
        assert probs[2] == pytest.approx((f / r) ** 2 / norm, rel=1e-12)

    def test_probabilities_sum_to_one_under_truncation(self):
        scenario = FailureScenario(
            modes=(
                node_mode(failure_rate=2e-3, repair_rate=5e-2, count=2),
                icn2_switch_mode(failure_rate=7e-4, repair_rate=3e-2, count=2),
            ),
            max_concurrent=2,
        )
        states = enumerate_states(scenario)
        assert len(states) == 6  # 3x3 product minus the three sum>2 corners
        probs = steady_state(scenario, (100, 4))
        assert sum(probs) == pytest.approx(1.0, abs=1e-12)
        assert all(p >= 0.0 for p in probs)

    def test_zero_rate_modes_get_exact_zero(self):
        scenario = FailureScenario(
            modes=(
                node_mode(failure_rate=1e-4, repair_rate=1e-2),
                icn2_switch_mode(failure_rate=0.0, repair_rate=0.0),
            )
        )
        states = enumerate_states(scenario)
        probs = steady_state(scenario, (100, 4))
        for state, p in zip(states, probs):
            if state[1] > 0:
                assert p == 0.0
        assert sum(probs) == pytest.approx(1.0, abs=1e-12)

    def test_all_rates_zero_is_exactly_pristine(self):
        scenario = FailureScenario(
            modes=(node_mode(), icn2_switch_mode())
        ).with_rates_zeroed()
        probs = steady_state(scenario, (100, 4))
        assert probs[0] == 1.0
        assert all(p == 0.0 for p in probs[1:])

    def test_enumeration_is_lexicographic_with_pristine_first(self):
        scenario = FailureScenario(
            modes=(node_mode(count=2), icn2_switch_mode()), max_concurrent=2
        )
        assert enumerate_states(scenario) == [
            (0, 0), (0, 1), (1, 0), (1, 1), (2, 0)
        ]
        assert state_label(scenario, (0, 0)) == "pristine"
        assert state_label(scenario, (2, 0)) == "node=2"
        assert state_label(scenario, (1, 1)) == "node=1+icn2-switch=1"

    def test_population_validation(self):
        scenario = FailureScenario(modes=(node_mode(count=8),))
        with pytest.raises(ValueError, match="only 4 component"):
            steady_state(scenario, (4,))
        with pytest.raises(ValueError, match="one population per mode"):
            steady_state(scenario, (4, 4))

    def test_two_state_closed_form_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="mtbf"):
            two_state_availability(0.0, 1.0)
        with pytest.raises(ValueError, match="mttr"):
            two_state_availability(1.0, -2.0)


class TestDegrade:
    def test_populations_on_544(self, base_544):
        scenario = FailureScenario(
            modes=(node_mode(), icn2_switch_mode(), icn2_link_mode())
        )
        # 544 nodes; ICN2 is a 4-port 3-tree: 4 top-level switches, 16 nodes
        # worth of links per level.
        assert resolve_populations(base_544.system, scenario) == (544, 4, 16)

    def test_switch_loss_derates_bandwidth_only(self, base_544):
        system = base_544.system
        scenario = FailureScenario(modes=(icn2_switch_mode(),))
        pristine, degraded = expand_states(system, scenario)
        assert pristine.system == system
        assert degraded.system.icn2.bandwidth == pytest.approx(
            system.icn2.bandwidth * 3 / 4
        )
        # Topology shape is untouched: only the bandwidth is derated.
        assert degraded.system.icn2_tree_depth == system.icn2_tree_depth
        assert degraded.system.clusters == system.clusters
        assert degraded.active_nodes == system.total_nodes

    def test_node_loss_changes_capacity_not_fabric(self, base_544):
        system = base_544.system
        scenario = FailureScenario(modes=(node_mode(count=2),))
        states = expand_states(system, scenario)
        assert [st.active_nodes for st in states] == [544, 543, 542]
        assert all(st.system == system for st in states)

    def test_ports_mode_derates_by_fraction(self, base_544):
        system = base_544.system
        scenario = FailureScenario(
            modes=(
                FailureMode(
                    kind="ports", role="icn1", cluster=0, count=2,
                    fraction=0.25, failure_rate=1e-4, repair_rate=1e-2,
                ),
            )
        )
        states = expand_states(system, scenario)
        original = system.clusters[0].icn1.bandwidth
        assert states[1].system.clusters[0].icn1.bandwidth == pytest.approx(
            original * 0.75
        )
        assert states[2].system.clusters[0].icn1.bandwidth == pytest.approx(
            original * 0.5
        )
        # Other clusters and networks are untouched.
        assert states[2].system.clusters[1:] == system.clusters[1:]
        assert states[2].system.icn2 == system.icn2

    def test_factors_compose_multiplicatively(self, base_544):
        system = base_544.system
        scenario = FailureScenario(
            modes=(icn2_switch_mode(), icn2_link_mode()), max_concurrent=2
        )
        both = [
            st for st in expand_states(system, scenario) if st.state == (1, 1)
        ]
        assert both, "joint state missing from the expansion"
        assert both[0].system.icn2.bandwidth == pytest.approx(
            system.icn2.bandwidth * (3 / 4) * (15 / 16)
        )

    def test_disconnecting_spec_names_the_state(self, base_544):
        scenario = FailureScenario(modes=(icn2_switch_mode(count=4),))
        with pytest.raises(ValueError) as err:
            expand_states(base_544.system, scenario)
        message = str(err.value)
        assert "availability state 'icn2-switch=4' is invalid" in message
        assert "disconnect the fabric" in message

    def test_removing_every_node_names_the_state(self):
        system = homogeneous_system(switch_ports=4, tree_depth=1, num_clusters=4)
        scenario = FailureScenario(
            modes=(node_mode(count=system.total_nodes),)
        )
        with pytest.raises(ValueError) as err:
            expand_states(system, scenario)
        message = str(err.value)
        assert f"availability state 'node={system.total_nodes}'" in message
        assert "removes all" in message

    def test_bad_targeting_fails_before_expansion(self, base_544):
        with pytest.raises(ValueError, match="cluster 99"):
            mode_population(
                base_544.system,
                FailureMode(
                    kind="switch", role="icn1", cluster=99,
                    failure_rate=1e-4, repair_rate=1e-2,
                ),
            )
        with pytest.raises(ValueError, match="level 9"):
            mode_population(base_544.system, icn2_switch_mode(level=9))
        single = homogeneous_system(switch_ports=4, tree_depth=2, num_clusters=1)
        with pytest.raises(ValueError, match="no ICN2"):
            mode_population(single, icn2_switch_mode())
        with pytest.raises(ValueError, match="only 4 component"):
            mode_population(base_544.system, icn2_switch_mode(count=5))


class TestPerformabilityAnalysis:
    def test_acceptance_weighted_capacity_below_pristine(
        self, base_544, acceptance_failures
    ):
        result = performability_analysis(base_544, acceptance_failures)
        data = result.data
        assert result.kind == "performability"
        assert data["availability"] < 1.0
        assert data["saturation_load_weighted"] < data["saturation_load_pristine"]
        assert data["expected_capacity"] < (
            base_544.system.total_nodes * data["saturation_load_pristine"]
        )
        assert sum(data["columns"]["probability"]) == pytest.approx(1.0, abs=1e-12)

    def test_zero_rates_recover_pristine_exactly(self, base_544, acceptance_failures):
        result = performability_analysis(
            base_544, acceptance_failures.with_rates_zeroed()
        )
        data = result.data
        assert data["availability"] == 1.0
        assert data["saturation_load_weighted"] == data["saturation_load_pristine"]
        assert data["expected_capacity"] == (
            base_544.system.total_nodes * data["saturation_load_pristine"]
        )

    def test_switch_loss_outranks_node_loss(self, base_544, acceptance_failures):
        ranking = performability_analysis(base_544, acceptance_failures).data[
            "ranking"
        ]
        impact = {row["mode"]: row["impact"] for row in ranking}
        assert impact["icn2-switch"] > impact["node"]
        assert ranking[0]["mode"] == "icn2-switch"
        # Impacts are sorted worst-first and every single-failure state ranks,
        # including ones reached with probability ~0.
        impacts = [row["impact"] for row in ranking]
        assert impacts == sorted(impacts, reverse=True)
        assert len(ranking) == len(acceptance_failures.modes)

    def test_zero_rate_what_if_modes_still_rank(self, base_544):
        failures = FailureScenario(
            modes=(
                node_mode(),
                icn2_switch_mode(failure_rate=0.0, repair_rate=0.0),
            )
        )
        ranking = performability_analysis(base_544, failures).data["ranking"]
        rows = {row["mode"]: row for row in ranking}
        assert rows["icn2-switch"]["probability"] == 0.0
        assert rows["icn2-switch"]["impact"] > rows["node"]["impact"]

    def test_serial_and_parallel_are_bit_identical(self, base_544, acceptance_failures):
        serial = performability_analysis(base_544, acceptance_failures)
        fanned = performability_analysis(base_544, acceptance_failures, jobs=2)
        assert fanned.data["jobs"] == 2
        # The serial run prices every distinct degraded system in one
        # stacked evaluation; --jobs falls back to the supervised pool.
        assert serial.data["stacked"] is True
        assert fanned.data["stacked"] is False
        for key in ("columns", "curve", "ranking", "availability",
                    "saturation_load_weighted", "expected_capacity"):
            assert canonical(serial.data[key]) == canonical(fanned.data[key])

    def test_cache_replay_evaluates_nothing(self, base_544, acceptance_failures, tmp_path):
        store = ResultCache(tmp_path / "cache")
        first = performability_analysis(
            base_544, acceptance_failures, cache=store
        )
        assert first.data["cached"] == 0
        assert first.data["evaluated"] > 0
        second = performability_analysis(
            base_544, acceptance_failures, cache=store
        )
        assert second.data["evaluated"] == 0
        assert second.data["cached"] == len(second.data["states"])
        assert second.data["cache_hits"] == second.data["cached"]
        for key in ("columns", "curve", "ranking", "availability",
                    "saturation_load_weighted", "expected_capacity"):
            assert canonical(first.data[key]) == canonical(second.data[key])

    def test_node_states_share_one_evaluation(self, base_544):
        # Node losses leave the fabric untouched, so all three states
        # degrade to the same system and cost a single model evaluation.
        failures = FailureScenario(modes=(node_mode(count=2),))
        result = performability_analysis(base_544, failures)
        assert len(result.data["states"]) == 3
        assert result.data["evaluated"] == 1

    def test_curve_is_conditional_and_served_mass_tracks_pi(
        self, base_544, acceptance_failures
    ):
        data = performability_analysis(base_544, acceptance_failures).data
        curve = data["curve"]
        n_loads = len(curve["load"])
        assert len(curve["latency"]) == n_loads
        assert len(curve["served_probability"]) == n_loads
        # At the lowest load every state serves: mass 1, finite latency.
        assert curve["served_probability"][0] == pytest.approx(1.0, abs=1e-12)
        assert curve["latency"][0] > 0.0
        # Served mass never increases with load.
        served = curve["served_probability"]
        assert all(a >= b - 1e-12 for a, b in zip(served, served[1:]))

    def test_cache_key_ignores_spec_name(self, base_544):
        loads = (1e-5, 2e-5)
        renamed = ScenarioSpec.from_dict(
            {**base_544.to_dict(), "name": "alias", "description": "other"}
        )
        assert state_cache_key(base_544, loads) == state_cache_key(renamed, loads)
        assert state_cache_key(base_544, loads) != state_cache_key(
            base_544, (1e-5, 3e-5)
        )

    def test_facade_parity_and_input_forms(
        self, base_544, acceptance_failures, tmp_path
    ):
        direct = performability_analysis(base_544, acceptance_failures)
        exp = Experiment("544")
        via_obj = exp.performability(acceptance_failures)
        via_dict = exp.performability(acceptance_failures.to_dict())
        path = acceptance_failures.save(tmp_path / "f.json")
        via_path = exp.performability(str(path))
        for other in (via_obj, via_dict, via_path):
            assert canonical(other.data) == canonical(direct.data)
            assert other.text == direct.text

    def test_invalid_spec_surfaces_through_facade(self, base_544):
        failures = FailureScenario(modes=(icn2_switch_mode(count=4),))
        with pytest.raises(ValueError, match="availability state"):
            Experiment("544").performability(failures)

    def test_result_spec_is_composite_and_round_trips(
        self, base_544, acceptance_failures
    ):
        result = performability_analysis(base_544, acceptance_failures)
        assert ScenarioSpec.from_dict(result.spec["scenario"]) == base_544
        assert (
            FailureScenario.from_dict(result.spec["failures"])
            == acceptance_failures
        )
