"""Batched-engine tests (core.batch): scalar equivalence + closed-form saturation.

The scalar :class:`AnalyticalModel` is the reference implementation; the
batched engine must reproduce it to float64 round-off (the ISSUE's 1e-9
contract) across systems, traffic patterns and option variants, and its
per-resource saturation rates must agree with the full-model bisection.
"""

import numpy as np
import pytest

from repro.core import (
    AnalyticalModel,
    BatchedModel,
    ClusterSpec,
    MessageSpec,
    ModelOptions,
    SystemConfig,
    find_saturation_load,
    paper_system_544,
    paper_system_1120,
    switch_channel_time,
    sweep_load,
)
from repro.workloads import HotspotTraffic, LocalityTraffic, UniformTraffic

MSG = MessageSpec(32, 256.0)
REL = 1e-9


def assert_equivalent(model: AnalyticalModel, engine: BatchedModel, grid) -> None:
    """Compare every field of the batched sweep against scalar evaluations."""
    sweep = engine.evaluate_many(grid)
    assert sweep.loads.shape == (len(grid),)
    assert len(sweep.results) == len(grid)
    for lam, batched in zip(grid, sweep.results):
        scalar = model.evaluate(float(lam))
        assert batched.load == scalar.load
        assert batched.saturated == scalar.saturated
        assert batched.saturated_resources == scalar.saturated_resources
        if np.isfinite(scalar.latency):
            assert batched.latency == pytest.approx(scalar.latency, rel=REL)
        else:
            assert batched.latency == scalar.latency
        for b, s in zip(batched.clusters, scalar.clusters):
            assert (b.name, b.tree_depth, b.nodes, b.count) == (s.name, s.tree_depth, s.nodes, s.count)
            assert b.outgoing_probability == s.outgoing_probability
            assert b.saturated == s.saturated
            for field in ("mean", "inter_network", "concentrator_wait", "outward"):
                _assert_close(getattr(b, field), getattr(s, field))
            for field in ("source_wait", "network_latency", "tail_time", "total",
                          "aggregate_rate", "channel_rate", "source_utilization"):
                _assert_close(getattr(b.intra, field), getattr(s.intra, field))
            assert b.intra.saturated == s.intra.saturated
            assert len(b.inter_pairs) == len(s.inter_pairs)
            for bp, sp in zip(b.inter_pairs, s.inter_pairs):
                assert bp.saturated == sp.saturated
                for field in ("source_wait", "network_latency", "tail_time", "total",
                              "ecn1_rate", "icn2_rate", "ecn1_channel_rate",
                              "icn2_channel_rate", "relaxing_factor", "source_utilization"):
                    _assert_close(getattr(bp, field), getattr(sp, field))


def _assert_close(a: float, b: float) -> None:
    if np.isfinite(b):
        assert a == pytest.approx(b, rel=REL, abs=1e-300)
    else:
        assert a == b or (np.isnan(a) and np.isnan(b))


@pytest.fixture(scope="module")
def hetero():
    """Small heterogeneous system: fast enough for scalar reference loops."""
    return SystemConfig(
        switch_ports=4,
        clusters=(
            ClusterSpec(tree_depth=1, name="a0"),
            ClusterSpec(tree_depth=1, name="a1"),
            ClusterSpec(tree_depth=2, name="b"),
            ClusterSpec(tree_depth=3, name="c"),
        ),
        name="tiny-hetero",
    )


class TestScalarEquivalence:
    @pytest.mark.parametrize("system_factory", [paper_system_1120, paper_system_544])
    def test_uniform_traffic_paper_systems(self, system_factory):
        """Latency, flags and breakdowns agree across the whole curve, from
        zero load through points beyond saturation."""
        system = system_factory()
        model = AnalyticalModel(system, MSG)
        engine = BatchedModel(system, MSG)
        lam_star = engine.saturation_load()
        grid = np.concatenate([[0.0], np.linspace(0.1 * lam_star, 1.15 * lam_star, 8)])
        assert_equivalent(model, engine, grid)

    @pytest.mark.parametrize(
        "pattern",
        [UniformTraffic(), HotspotTraffic(3, 0.4), LocalityTraffic(0.7), LocalityTraffic(0.0)],
        ids=["uniform", "hotspot", "locality-0.7", "locality-0"],
    )
    def test_nonuniform_patterns(self, hetero, pattern):
        model = AnalyticalModel(hetero, MSG, pattern=pattern)
        engine = BatchedModel(hetero, MSG, pattern=pattern)
        lam_star = engine.saturation_load()
        grid = np.linspace(0.0, 1.1 * lam_star, 7)
        assert_equivalent(model, engine, grid)

    @pytest.mark.parametrize(
        "options",
        [
            ModelOptions(source_queue_rate="per_node"),
            ModelOptions(source_queue_rate="aggregate_pair"),
            ModelOptions(concentrator_rate="source_outgoing"),
            ModelOptions(variance_approximation="exponential"),
            ModelOptions(inter_average="traffic_weighted"),
            ModelOptions(relaxing_factor=False, tcn_convention="full_network_latency"),
        ],
        ids=["per_node", "aggregate_pair", "source_outgoing", "exponential", "weighted", "no-relax"],
    )
    def test_option_variants(self, options):
        system = paper_system_1120()
        model = AnalyticalModel(system, MSG, options)
        engine = BatchedModel(system, MSG, options)
        lam_star = engine.saturation_load()
        grid = np.linspace(0.0, 1.05 * lam_star, 6)
        assert_equivalent(model, engine, grid)

    def test_single_cluster_system(self):
        single = SystemConfig(switch_ports=4, clusters=(ClusterSpec(tree_depth=3, name="solo"),), name="single")
        model = AnalyticalModel(single, MSG)
        engine = BatchedModel(single, MSG)
        lam_star = engine.saturation_load()
        assert_equivalent(model, engine, np.linspace(0.0, 1.1 * lam_star, 6))

    def test_message_geometry_variants(self):
        system = paper_system_1120()
        for message in (MessageSpec(64, 256.0), MessageSpec(128, 512.0)):
            model = AnalyticalModel(system, message)
            engine = BatchedModel(system, message)
            lam_star = engine.saturation_load()
            assert_equivalent(model, engine, np.linspace(0.0, lam_star, 5))


class TestEvaluateManyContract:
    def test_rejects_negative_and_empty(self):
        engine = BatchedModel(paper_system_1120(), MSG)
        with pytest.raises(ValueError):
            engine.evaluate_many([-1e-5])
        with pytest.raises(ValueError):
            engine.evaluate_many([])
        with pytest.raises(ValueError):
            engine.evaluate_many([float("nan")])
        with pytest.raises(ValueError):
            engine.resource_utilizations([-1e-5])

    def test_with_results_false_skips_breakdowns(self):
        engine = BatchedModel(paper_system_1120(), MSG)
        grid = np.linspace(1e-5, 3e-4, 6)
        full = engine.evaluate_many(grid)
        lean = engine.evaluate_many(grid, with_results=False)
        assert lean.results == ()
        np.testing.assert_array_equal(full.latencies, lean.latencies)

    def test_sweep_load_delegates_to_engine(self):
        model = AnalyticalModel(paper_system_544(), MSG)
        grid = [1e-5, 2e-4]
        sweep = sweep_load(model, grid)
        for lam, result in zip(grid, sweep.results):
            assert result.latency == pytest.approx(model.evaluate(lam).latency, rel=REL)

    def test_from_model_caches_engine(self):
        model = AnalyticalModel(paper_system_544(), MSG)
        engine = BatchedModel.from_model(model)
        assert engine is BatchedModel.from_model(model)
        # The engine wraps the caller's instance, not a rebuilt copy.
        assert engine.reference_model is model

    def test_from_model_rebuilds_after_attribute_reassignment(self):
        """Regression: the cached engine used to survive model mutation and
        silently answer for the old message geometry."""
        model = AnalyticalModel(paper_system_544(), MSG)
        stale = BatchedModel.from_model(model)
        model.message = MessageSpec(64, 256.0)
        fresh = BatchedModel.from_model(model)
        assert fresh is not stale
        scalar = model.evaluate(1e-4).latency
        assert fresh.evaluate(1e-4).latency == pytest.approx(scalar, rel=REL)

    def test_evaluate_single_point(self):
        engine = BatchedModel(paper_system_544(), MSG)
        scalar = AnalyticalModel(paper_system_544(), MSG).evaluate(2e-4)
        assert engine.evaluate(2e-4).latency == pytest.approx(scalar.latency, rel=REL)


class TestClosedFormSaturation:
    TABLE_CASES = [
        (paper_system_1120, 32, 256.0),
        (paper_system_1120, 64, 512.0),
        (paper_system_1120, 128, 256.0),
        (paper_system_544, 32, 256.0),
        (paper_system_544, 64, 256.0),
        (paper_system_544, 128, 512.0),
    ]

    @pytest.mark.parametrize("system_factory,m_flits,d_m", TABLE_CASES)
    def test_matches_bisection_on_table_systems(self, system_factory, m_flits, d_m):
        """Acceptance: closed form within the bisection's rel_tol on every
        Table 1 organisation × Table 2 message geometry."""
        model = AnalyticalModel(system_factory(), MessageSpec(m_flits, d_m))
        exact = find_saturation_load(model)  # default: closed form
        bisected = find_saturation_load(model, method="bisection", rel_tol=1e-4)
        assert exact == pytest.approx(bisected, rel=2e-4)
        # The bisection overshoots by construction; the exact value may not.
        assert exact <= bisected * (1 + 1e-12)

    def test_exact_value_brackets_scalar_saturation(self):
        for factory in (paper_system_1120, paper_system_544):
            model = AnalyticalModel(factory(), MSG)
            lam_star = BatchedModel.from_model(model).saturation_load()
            assert not model.is_saturated(lam_star * 0.99999)
            assert model.is_saturated(lam_star * 1.00001)

    def test_concentrator_closed_form_is_exact(self):
        """λ* = 1 / (max_i N_i U_i · M · t_cs^{I2}) — DESIGN.md §3 item 7,
        now produced directly by saturation_loads()."""
        system = paper_system_1120()
        engine = BatchedModel(system, MSG)
        sizes = system.cluster_sizes
        max_nu = max(n * system.outgoing_probability(i) for i, n in enumerate(sizes))
        predicted = 1.0 / (max_nu * MSG.length_flits * switch_channel_time(system.icn2, MSG.flit_bytes))
        assert engine.saturation_load() == pytest.approx(predicted, rel=1e-12)
        assert "concentrator" in engine.binding_resource()

    def test_per_resource_map_structure(self):
        engine = BatchedModel(paper_system_1120(), MSG)
        loads = engine.saturation_loads()
        classes = engine.cluster_classes
        for src in classes:
            assert f"{src.name}:icn1-source-queue" in loads
            for dst in classes:
                assert f"{src.name}->{dst.name}:concentrator" in loads
        assert all(lam > 0 for lam in loads.values())
        assert min(loads.values()) == engine.saturation_load()

    def test_source_queue_binding_when_icn2_oversized(self, hetero):
        """Scaling ICN2 way up moves the knee to a load-dependent-service
        source queue — the non-closed-form inversion must still match the
        full-model bisection."""
        from repro.analysis import scale_network

        fast_icn2 = scale_network(hetero, "icn2", 50.0)
        model = AnalyticalModel(fast_icn2, MSG)
        engine = BatchedModel.from_model(model)
        assert "concentrator" not in engine.binding_resource()
        exact = engine.saturation_load()
        bisected = find_saturation_load(model, method="bisection", rel_tol=1e-6)
        assert exact == pytest.approx(bisected, rel=1e-5)

    def test_single_cluster_source_queue_inversion(self):
        single = SystemConfig(switch_ports=4, clusters=(ClusterSpec(tree_depth=2, name="solo"),), name="single")
        model = AnalyticalModel(single, MSG)
        exact = find_saturation_load(model)
        bisected = find_saturation_load(model, method="bisection", rel_tol=1e-6)
        assert exact == pytest.approx(bisected, rel=1e-5)
        assert not model.is_saturated(exact * 0.9999)
        assert model.is_saturated(exact * 1.0001)

    def test_zero_rate_queues_excluded(self, hetero):
        """Queues that can never saturate (U_i = 1 ⇒ zero intra rate) are
        left out of the map instead of reporting an infinite λ*."""
        engine = BatchedModel(hetero, MSG, pattern=LocalityTraffic(0.0))
        loads = engine.saturation_loads()
        assert loads  # inter resources still present
        assert all(np.isfinite(lam) for lam in loads.values())
        assert not any(name.endswith("icn1-source-queue") for name in loads)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            find_saturation_load(AnalyticalModel(paper_system_544(), MSG), method="newton")


class TestBottleneckEngineReuse:
    def test_matching_engine_reused(self):
        from repro.analysis import model_bottlenecks

        system = paper_system_544()
        engine = BatchedModel(system, MSG)
        report = model_bottlenecks(system, MSG, 2e-4, engine=engine)
        fresh = model_bottlenecks(system, MSG, 2e-4)
        assert report.binding == fresh.binding
        assert report.saturation_load == fresh.saturation_load

    def test_mismatched_engine_rejected(self):
        from repro.analysis import model_bottlenecks

        engine = BatchedModel(paper_system_1120(), MSG)
        with pytest.raises(ValueError, match="different system"):
            model_bottlenecks(paper_system_544(), MSG, 2e-4, engine=engine)

    def test_mismatched_options_rejected(self):
        """Regression: an engine built with different ModelOptions used to be
        accepted silently, reporting utilisations for the wrong convention."""
        from repro.analysis import model_bottlenecks

        system = paper_system_544()
        engine = BatchedModel(system, MSG)  # default options
        with pytest.raises(ValueError, match="different system/message/options"):
            model_bottlenecks(
                system, MSG, 2e-4,
                options=ModelOptions(source_queue_rate="per_node"),
                engine=engine,
            )

    def test_engine_options_adopted_when_unspecified(self):
        """options=None with an engine adopts the engine's own options
        instead of demanding a redundant re-pass."""
        from repro.analysis import model_bottlenecks

        system = paper_system_544()
        opts = ModelOptions(concentrator_rate="source_outgoing")
        engine = BatchedModel(system, MSG, opts)
        report = model_bottlenecks(system, MSG, 2e-4, engine=engine)
        fresh = model_bottlenecks(system, MSG, 2e-4, options=opts)
        assert report.binding == fresh.binding


class TestRefineMonotoneCrossing:
    def test_converges_to_known_crossing(self):
        from repro.core.batch import refine_monotone_crossing

        lo, hi = refine_monotone_crossing(0.0, 1.0, lambda g: g >= 0.3, rel_tol=1e-10)
        assert lo < 0.3 <= hi
        assert hi - lo <= 1e-10 * hi

    def test_terminates_when_crossing_sits_at_zero(self):
        """Regression: a crossing at exactly lo == 0 used to spin forever
        (hi - lo > rel_tol * hi never fails while lo == 0 and rel_tol * hi
        underflows for denormal hi)."""
        from repro.core.batch import refine_monotone_crossing

        lo, hi = refine_monotone_crossing(0.0, 1.0, lambda g: g > 0, rel_tol=1e-4)
        assert lo == 0.0
        assert 0.0 < hi < 1e-60  # driven to (effectively) the crossing

    def test_budget_exactly_at_zero_load_latency_terminates(self):
        """End-to-end shape of the same hang: a budget equal to the
        zero-load latency means every positive load busts it."""
        from repro.analysis import max_load_for_latency

        system = paper_system_544()
        zero = AnalyticalModel(system, MSG).zero_load_latency()
        plan = max_load_for_latency(system, MSG, zero)
        assert plan.feasible
        assert plan.achieved == pytest.approx(0.0, abs=1e-12)
