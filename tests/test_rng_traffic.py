"""RNG stream and traffic-process tests (simulation.rng, simulation.traffic)."""

import numpy as np
import pytest

from repro.cluster import HeterogeneousSystem
from repro.simulation import PoissonArrivals, UniformDestinations, make_streams


class TestStreams:
    def test_deterministic(self):
        a, b = make_streams(123), make_streams(123)
        assert a.arrivals.random() == b.arrivals.random()
        assert a.destinations.random() == b.destinations.random()

    def test_streams_are_independent(self):
        s = make_streams(5)
        x = s.arrivals.random(4)
        y = s.destinations.random(4)
        assert not np.allclose(x, y)

    def test_different_seeds_differ(self):
        assert make_streams(1).arrivals.random() != make_streams(2).arrivals.random()

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            make_streams(-1)


class TestPoissonArrivals:
    def test_mean_interarrival(self):
        rng = np.random.default_rng(0)
        proc = PoissonArrivals(0.5, rng)
        gaps = [proc.next_arrival(0.0) for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(2.0, rel=0.05)

    def test_next_is_after_now(self):
        proc = PoissonArrivals(1.0, np.random.default_rng(1))
        now = 100.0
        assert proc.next_arrival(now) > now

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, np.random.default_rng(0))


class TestUniformDestinations:
    def test_never_self(self, built_small_system):
        rng = np.random.default_rng(3)
        sampler = UniformDestinations()
        for src in (0, 5, 31):
            for _ in range(200):
                assert sampler.sample_destination(rng, built_small_system, src) != src

    def test_covers_all_nodes_uniformly(self, built_small_system):
        rng = np.random.default_rng(4)
        sampler = UniformDestinations()
        n = built_small_system.total_nodes
        draws = 20_000
        counts = np.zeros(n)
        for _ in range(draws):
            counts[sampler.sample_destination(rng, built_small_system, 7)] += 1
        assert counts[7] == 0
        expected = draws / (n - 1)
        # Loose 5-sigma binomial bound per bucket.
        sigma = np.sqrt(draws * (1 / (n - 1)) * (1 - 1 / (n - 1)))
        others = np.delete(counts, 7)
        assert np.all(np.abs(others - expected) < 5 * sigma)

    def test_intra_fraction_matches_eq2(self, built_small_system):
        """P(destination in own cluster) should equal 1 - U_i."""
        rng = np.random.default_rng(5)
        sampler = UniformDestinations()
        cluster = built_small_system.cluster_of(0)
        draws = 30_000
        stay = sum(
            1
            for _ in range(draws)
            if cluster.contains_global(sampler.sample_destination(rng, built_small_system, 0))
        )
        expected = (cluster.num_nodes - 1) / (built_small_system.total_nodes - 1)
        assert stay / draws == pytest.approx(expected, abs=0.01)


class TestReplayableDraws:
    """Slice-consumption contract of the per-seed draw cache.

    Both event engines consume these arrays — the reference loop as
    Python lists, the array core as ndarray slices — so the cache must be
    draw-for-draw identical to the per-event scalar path for any mix of
    partial consumption, extension, and replay.
    """

    def test_partial_consumption_is_prefix_stable(self):
        from repro.simulation import ReplayableDraws

        draws = ReplayableDraws(3)
        first = draws.unit_arrivals(100).copy()
        # A later, larger request extends the same stream: the prefix is
        # untouched and the extension equals one fresh batched draw.
        longer = draws.unit_arrivals(250)
        assert longer[:100].tolist() == first.tolist()
        fresh = make_streams(3).arrivals.standard_exponential(250)
        assert longer.tolist() == fresh.tolist()

    def test_destinations_partial_then_extend(self):
        from repro.simulation import ReplayableDraws

        draws = ReplayableDraws(4)
        first = draws.destinations(50, 31).copy()
        longer = draws.destinations(200, 31)
        assert longer[:50].tolist() == first.tolist()
        fresh = make_streams(4).destinations.integers(0, 31, size=200)
        assert longer.tolist() == fresh.tolist()

    def test_batch_equals_per_event_scalar_path(self):
        """The historical engine drew scalars per event; numpy guarantees
        the batched cache streams the same values draw for draw."""
        from repro.simulation import ReplayableDraws

        draws = ReplayableDraws(7)
        batched_gaps = draws.unit_arrivals(64)
        batched_dest = draws.destinations(64, 15)
        scalar = make_streams(7)
        assert batched_gaps.tolist() == [scalar.arrivals.standard_exponential() for _ in range(64)]
        assert batched_dest.tolist() == [int(scalar.destinations.integers(0, 15)) for _ in range(64)]

    def test_destination_bound_is_sticky(self):
        from repro.simulation import ReplayableDraws

        draws = ReplayableDraws(0)
        draws.destinations(10, 31)
        with pytest.raises(ValueError, match="bound"):
            draws.destinations(10, 63)

    def test_cross_load_point_reuse_is_bit_identical(self, small_session, fast_window):
        """Two loads on one session share the seed's cache; rerunning a
        load must replay, not re-draw — same numbers to the last bit."""
        first = small_session.run(5e-4, seed=21, window=fast_window)
        small_session.run(2e-3, seed=21, window=fast_window)  # consumes the same cache
        again = small_session.run(5e-4, seed=21, window=fast_window)
        assert first.mean_latency == again.mean_latency
        assert first.duration == again.duration
        assert first.events == again.events

    def test_cache_eviction_keeps_results_identical(self, small_session, fast_window):
        """Blow past the session's LRU capacity so seed 100 is evicted and
        rebuilt from scratch; a rebuilt cache must reproduce the original
        run exactly (it derives from the seed alone)."""
        baseline = small_session.run(1e-3, seed=100, window=fast_window)
        assert 100 in small_session._draws
        for seed in range(101, 101 + small_session._draws_max):
            small_session.run(1e-3, seed=seed, window=fast_window)
        assert 100 not in small_session._draws  # evicted
        rebuilt = small_session.run(1e-3, seed=100, window=fast_window)
        assert rebuilt.mean_latency == baseline.mean_latency
        assert rebuilt.duration == baseline.duration
        assert rebuilt.events == baseline.events

    def test_array_engine_consumes_identical_draw_arrays(self, small_fabric):
        """The ndarray views the array core consumes must equal both the
        reference loop's lists and the per-event scalar stream."""
        from repro.simulation import MeasurementWindow, MessageLevelWormholeSimulator, ReplayableDraws

        window = MeasurementWindow(50, 200, 50)
        n = small_fabric.system.total_nodes
        draws = ReplayableDraws(13)
        sim = MessageLevelWormholeSimulator(
            small_fabric, window, 1e-3, make_streams(13), draws=draws, engine="array"
        )
        scalar = make_streams(13)
        need = n + window.total
        expected_gaps = [scalar.arrivals.standard_exponential() * 1e3 for _ in range(need)]
        assert sim._arrival_gaps_array.tolist() == pytest.approx(expected_gaps, rel=0, abs=0)
        assert sim._arrival_gaps == sim._arrival_gaps_array.tolist()
        expected_dest = [int(scalar.destinations.integers(0, n - 1)) for _ in range(window.total)]
        assert sim._dest_draws_array.tolist() == expected_dest
        assert sim._dest_draws == expected_dest

    def test_replayed_array_run_equals_fresh_streams_run(self, small_fabric, fast_window):
        from dataclasses import replace

        from repro.simulation import MessageLevelWormholeSimulator, ReplayableDraws

        results = []
        for engine in ("reference", "array"):
            cached = MessageLevelWormholeSimulator(
                small_fabric, fast_window, 1e-3, make_streams(17),
                draws=ReplayableDraws(17), engine=engine,
            ).run()
            fresh = MessageLevelWormholeSimulator(
                small_fabric, fast_window, 1e-3, make_streams(17), engine=engine
            ).run()
            assert replace(cached, wall_seconds=0.0) == replace(fresh, wall_seconds=0.0)
            results.append(replace(cached, wall_seconds=0.0))
        assert results[0] == results[1]
