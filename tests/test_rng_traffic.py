"""RNG stream and traffic-process tests (simulation.rng, simulation.traffic)."""

import numpy as np
import pytest

from repro.cluster import HeterogeneousSystem
from repro.simulation import PoissonArrivals, UniformDestinations, make_streams


class TestStreams:
    def test_deterministic(self):
        a, b = make_streams(123), make_streams(123)
        assert a.arrivals.random() == b.arrivals.random()
        assert a.destinations.random() == b.destinations.random()

    def test_streams_are_independent(self):
        s = make_streams(5)
        x = s.arrivals.random(4)
        y = s.destinations.random(4)
        assert not np.allclose(x, y)

    def test_different_seeds_differ(self):
        assert make_streams(1).arrivals.random() != make_streams(2).arrivals.random()

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            make_streams(-1)


class TestPoissonArrivals:
    def test_mean_interarrival(self):
        rng = np.random.default_rng(0)
        proc = PoissonArrivals(0.5, rng)
        gaps = [proc.next_arrival(0.0) for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(2.0, rel=0.05)

    def test_next_is_after_now(self):
        proc = PoissonArrivals(1.0, np.random.default_rng(1))
        now = 100.0
        assert proc.next_arrival(now) > now

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, np.random.default_rng(0))


class TestUniformDestinations:
    def test_never_self(self, built_small_system):
        rng = np.random.default_rng(3)
        sampler = UniformDestinations()
        for src in (0, 5, 31):
            for _ in range(200):
                assert sampler.sample_destination(rng, built_small_system, src) != src

    def test_covers_all_nodes_uniformly(self, built_small_system):
        rng = np.random.default_rng(4)
        sampler = UniformDestinations()
        n = built_small_system.total_nodes
        draws = 20_000
        counts = np.zeros(n)
        for _ in range(draws):
            counts[sampler.sample_destination(rng, built_small_system, 7)] += 1
        assert counts[7] == 0
        expected = draws / (n - 1)
        # Loose 5-sigma binomial bound per bucket.
        sigma = np.sqrt(draws * (1 / (n - 1)) * (1 - 1 / (n - 1)))
        others = np.delete(counts, 7)
        assert np.all(np.abs(others - expected) < 5 * sigma)

    def test_intra_fraction_matches_eq2(self, built_small_system):
        """P(destination in own cluster) should equal 1 - U_i."""
        rng = np.random.default_rng(5)
        sampler = UniformDestinations()
        cluster = built_small_system.cluster_of(0)
        draws = 30_000
        stay = sum(
            1
            for _ in range(draws)
            if cluster.contains_global(sampler.sample_destination(rng, built_small_system, 0))
        )
        expected = (cluster.num_nodes - 1) / (built_small_system.total_nodes - 1)
        assert stay / draws == pytest.approx(expected, abs=0.01)
