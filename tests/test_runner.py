"""High-level simulation API tests (simulation.runner)."""

import pytest

from repro.core import MessageSpec
from repro.simulation import (
    MeasurementWindow,
    SimulationConfig,
    SimulationSession,
    simulate,
)


class TestSimulationConfig:
    def test_defaults(self, small_system, small_message):
        cfg = SimulationConfig(system=small_system, message=small_message, generation_rate=1e-3)
        assert cfg.granularity == "message"
        assert cfg.cd_mode == "paper"
        assert cfg.window.measured == 20_000

    def test_rejects_zero_rate(self, small_system, small_message):
        with pytest.raises(ValueError):
            SimulationConfig(system=small_system, message=small_message, generation_rate=0.0)

    def test_rejects_bad_granularity(self, small_system, small_message):
        with pytest.raises(ValueError):
            SimulationConfig(
                system=small_system, message=small_message, generation_rate=1e-3, granularity="quantum"
            )


class TestSimulate:
    def test_end_to_end(self, small_system, small_message):
        cfg = SimulationConfig(
            system=small_system,
            message=small_message,
            generation_rate=1e-3,
            seed=13,
            window=MeasurementWindow(100, 1000, 100),
        )
        result = simulate(cfg)
        assert result.completed
        assert result.stats.count == 1000
        assert result.mean_latency > 0
        assert result.granularity == "message"
        assert result.seed == 13

    def test_flit_granularity_dispatch(self, small_system, small_message):
        cfg = SimulationConfig(
            system=small_system,
            message=small_message,
            generation_rate=1e-3,
            window=MeasurementWindow(20, 200, 20),
            granularity="flit",
        )
        result = simulate(cfg)
        assert result.completed
        assert result.granularity == "flit"


class TestSession:
    def test_session_matches_one_shot(self, small_system, small_message):
        window = MeasurementWindow(100, 800, 100)
        session = SimulationSession(small_system, small_message)
        a = session.run(1e-3, seed=4, window=window)
        b = simulate(
            SimulationConfig(
                system=small_system,
                message=small_message,
                generation_rate=1e-3,
                seed=4,
                window=window,
            )
        )
        assert a.mean_latency == pytest.approx(b.mean_latency)

    def test_session_reuse_is_stateless(self, small_session):
        window = MeasurementWindow(100, 800, 100)
        first = small_session.run(1e-3, seed=5, window=window)
        _ = small_session.run(5e-3, seed=6, window=window)
        again = small_session.run(1e-3, seed=5, window=window)
        assert first.mean_latency == again.mean_latency

    def test_draw_cache_evicts_lru_not_fifo(self, small_system, small_message):
        """Regression: a cache hit must refresh recency — FIFO eviction
        would drop a session's hottest seed first."""
        window = MeasurementWindow(10, 100, 10)
        session = SimulationSession(small_system, small_message)
        session._draws_max = 2
        session.run(1e-3, seed=0, window=window)
        session.run(1e-3, seed=1, window=window)
        session.run(1e-3, seed=0, window=window)  # hit: seed 0 becomes MRU
        session.run(1e-3, seed=2, window=window)  # evicts seed 1, not seed 0
        assert list(session._draws) == [0, 2]

    def test_draw_cache_hit_replays_same_object(self, small_system, small_message):
        window = MeasurementWindow(10, 100, 10)
        session = SimulationSession(small_system, small_message)
        session.run(1e-3, seed=7, window=window)
        draws = session._draws[7]
        session.run(2e-3, seed=7, window=window)
        assert session._draws[7] is draws

    def test_wall_seconds_recorded(self, small_session):
        result = small_session.run(1e-3, seed=1, window=MeasurementWindow(10, 100, 10))
        assert result.wall_seconds > 0

    def test_message_spec_accessible(self, small_session, small_message):
        assert small_session.message is small_message
        assert small_session.fabric.message == MessageSpec(16, 256.0)
