"""m-port n-tree construction tests (topology.mport_ntree vs paper §2)."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import num_nodes, num_switches, switches_per_level
from repro.topology import ChannelKind, MPortNTree, structural_summary

trees = st.tuples(st.sampled_from([4, 6, 8]), st.integers(1, 3))


class TestPopulation:
    @given(trees)
    def test_counts_match_closed_forms(self, params):
        m, n = params
        tree = MPortNTree(m, n)
        assert tree.num_nodes == num_nodes(m, n)
        assert tree.num_switches == num_switches(m, n)
        assert sum(1 for _ in tree.switches()) == tree.num_switches
        assert sum(1 for _ in tree.nodes()) == tree.num_nodes

    @given(trees)
    def test_switches_per_level(self, params):
        m, n = params
        tree = MPortNTree(m, n)
        per_level = switches_per_level(m, n)
        for level in range(1, n + 1):
            count = sum(1 for s in tree.switches() if s.level == level)
            assert count == per_level[level - 1]

    @given(trees)
    def test_root_switch_count(self, params):
        m, n = params
        tree = MPortNTree(m, n)
        assert len(tree.root_switches) == (m // 2) ** (n - 1)

    def test_rejects_odd_ports(self):
        with pytest.raises(ValueError):
            MPortNTree(5, 2)


class TestAdjacency:
    @given(trees, st.data())
    def test_up_down_are_inverse(self, params, data):
        m, n = params
        tree = MPortNTree(m, n)
        switches = [s for s in tree.switches() if s.level < n]
        if not switches:
            return
        switch = data.draw(st.sampled_from(switches))
        port = data.draw(st.integers(0, tree.radix - 1))
        upper = tree.up_neighbor(switch, port)
        down_port = switch.prefix[-1]
        assert tree.down_neighbor(upper, down_port) == switch
        assert tree.is_adjacent(switch, upper)

    @given(trees, st.data())
    def test_leaf_switch_adjacency(self, params, data):
        m, n = params
        tree = MPortNTree(m, n)
        node = tree.node(data.draw(st.integers(0, tree.num_nodes - 1)))
        leaf = tree.leaf_switch(node)
        assert leaf.level == 1
        assert tree.is_adjacent(node, leaf)
        assert tree.down_neighbor(leaf, node.leaf_port) == node

    def test_root_has_wide_down_ports(self):
        tree = MPortNTree(8, 2)
        root = tree.root_switches[0]
        children = {tree.down_neighbor(root, p) for p in range(8)}
        assert len(children) == 8
        with pytest.raises(ValueError):
            tree.up_neighbor(root, 0)


class TestChannels:
    @given(trees)
    def test_link_count_and_uniqueness(self, params):
        m, n = params
        tree = MPortNTree(m, n)
        links = list(tree.links())
        keys = {(l.source, l.target) for l in links}
        assert len(keys) == len(links)  # no duplicate directed channels
        assert len(links) == 2 * tree.num_full_duplex_links()

    @given(trees)
    def test_kinds_partition(self, params):
        m, n = params
        tree = MPortNTree(m, n)
        kinds = [l.kind for l in tree.links()]
        node_links = sum(1 for k in kinds if k is not ChannelKind.SWITCH_TO_SWITCH)
        assert node_links == 2 * tree.num_nodes

    @given(trees)
    def test_graph_is_connected(self, params):
        m, n = params
        tree = MPortNTree(m, n)
        summary = structural_summary(tree)
        assert summary["connected"]
        assert summary["num_links"] == summary["expected_links"]

    def test_networkx_degrees(self):
        tree = MPortNTree(4, 2)
        graph = tree.to_networkx()
        for vertex, data in graph.nodes(data=True):
            if data["kind"] == "node":
                assert graph.degree(vertex) == 1
            elif vertex.is_root:
                assert graph.degree(vertex) == 4  # all m ports down
            else:
                assert graph.degree(vertex) == 4  # m/2 down + m/2 up

    def test_tree_diameter_bound(self):
        # Any two nodes are within 2n + ... the graph diameter (in hops,
        # nodes+switches alternating) is 2(n+1) - 2 node-hops at most.
        tree = MPortNTree(4, 3)
        graph = tree.to_networkx()
        assert nx.diameter(graph) <= 2 * (tree.tree_depth + 1)
