"""Command-line interface tests (repro.cli)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions if hasattr(a, "choices") and a.choices)
        assert set(sub.choices) == {
            "describe",
            "latency",
            "saturation",
            "sweep",
            "simulate",
            "validate",
            "capacity",
            "report",
        }

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["describe", "--system", "2048"])


class TestDescribe:
    def test_describe_1120(self, capsys):
        code, out, _ = run_cli(capsys, "describe", "--system", "1120")
        assert code == 0
        assert "N=1120" in out
        assert "U_i (Eq.2)" in out

    def test_describe_544(self, capsys):
        code, out, _ = run_cli(capsys, "describe", "--system", "544")
        assert code == 0
        assert "C=16" in out


class TestLatency:
    def test_latency_report(self, capsys):
        code, out, _ = run_cli(capsys, "latency", "--system", "544", "--load", "2e-4")
        assert code == 0
        assert "mean message latency" in out
        assert "L_in" in out and "W_d" in out

    def test_saturated_load_reported(self, capsys):
        code, out, _ = run_cli(capsys, "latency", "--system", "544", "--load", "1")
        assert code == 0
        assert "SATURATED" in out

    def test_negative_load_is_an_error(self, capsys):
        code, _, err = run_cli(capsys, "latency", "--system", "544", "--load=-1e-4")
        assert code == 2
        assert "error" in err


class TestSaturation:
    def test_reports_knee_and_binding(self, capsys):
        code, out, _ = run_cli(capsys, "saturation", "--system", "1120", "--flits", "32")
        assert code == 0
        # Exact closed-form knee (the old bisection reported 5.1767e-04).
        assert "5.1766e-04" in out
        assert "concentrator" in out
        assert "per-resource saturation" in out


class TestSweep:
    def test_sweep_rows(self, capsys):
        code, out, _ = run_cli(capsys, "sweep", "--system", "544", "--points", "4")
        assert code == 0
        assert out.count("\n") >= 6
        assert "lambda_g" in out


class TestSimulate:
    def test_simulate_small_run(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "simulate",
            "--system",
            "544",
            "--load",
            "2e-4",
            "--messages",
            "500",
            "--seed",
            "1",
        )
        assert code == 0
        assert "simulated mean latency" in out
        assert "completed=True" in out


class TestValidate:
    def test_validate_curve(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "validate",
            "--system",
            "544",
            "--points",
            "2",
            "--messages",
            "500",
        )
        assert code == 0
        assert "model" in out and "simulation" in out


class TestCapacity:
    def test_feasible_budget(self, capsys):
        code, out, _ = run_cli(capsys, "capacity", "--system", "544", "--budget", "60")
        assert code == 0
        assert "feasible" in out

    def test_infeasible_budget(self, capsys):
        code, out, _ = run_cli(capsys, "capacity", "--system", "544", "--budget", "1")
        assert code == 0
        assert "INFEASIBLE" in out
