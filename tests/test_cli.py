"""Command-line interface tests (repro.cli)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    @staticmethod
    def _subparsers(parser):
        sub = next(a for a in parser._actions if hasattr(a, "choices") and a.choices)
        return dict(sub.choices)

    def test_all_subcommands_registered(self):
        assert set(self._subparsers(build_parser())) == {
            "describe",
            "latency",
            "saturation",
            "sweep",
            "simulate",
            "validate",
            "capacity",
            "bottlenecks",
            "knee",
            "whatif",
            "explore",
            "calibrate",
            "performability",
            "report",
            "scenarios",
            "export-config",
        }

    def test_out_flag_coverage(self):
        """Every result-producing subcommand persists with --out; the flag
        set is pinned so a new subcommand cannot silently skip it."""
        flags = {
            name: {s for action in p._actions for s in action.option_strings}
            for name, p in self._subparsers(build_parser()).items()
        }
        with_out = {name for name, f in flags.items() if "--out" in f}
        assert with_out == {
            "sweep",
            "validate",
            "capacity",
            "bottlenecks",
            "knee",
            "whatif",
            "explore",
            "calibrate",
            "performability",
            "export-config",
        }

    def test_jobs_flag_coverage(self):
        flags = {
            name: {s for action in p._actions for s in action.option_strings}
            for name, p in self._subparsers(build_parser()).items()
        }
        with_jobs = {name for name, f in flags.items() if "--jobs" in f}
        assert with_jobs == {
            "sweep",
            "simulate",
            "validate",
            "explore",
            "calibrate",
            "performability",
            "report",
        }

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["describe", "--system", "2048"])


class TestDescribe:
    def test_describe_1120(self, capsys):
        code, out, _ = run_cli(capsys, "describe", "--system", "1120")
        assert code == 0
        assert "N=1120" in out
        assert "U_i (Eq.2)" in out

    def test_describe_544(self, capsys):
        code, out, _ = run_cli(capsys, "describe", "--system", "544")
        assert code == 0
        assert "C=16" in out


class TestLatency:
    def test_latency_report(self, capsys):
        code, out, _ = run_cli(capsys, "latency", "--system", "544", "--load", "2e-4")
        assert code == 0
        assert "mean message latency" in out
        assert "L_in" in out and "W_d" in out

    def test_saturated_load_reported(self, capsys):
        code, out, _ = run_cli(capsys, "latency", "--system", "544", "--load", "1")
        assert code == 0
        assert "SATURATED" in out

    def test_negative_load_is_an_error(self, capsys):
        code, _, err = run_cli(capsys, "latency", "--system", "544", "--load=-1e-4")
        assert code == 2
        assert "error" in err


class TestSaturation:
    def test_reports_knee_and_binding(self, capsys):
        code, out, _ = run_cli(capsys, "saturation", "--system", "1120", "--flits", "32")
        assert code == 0
        # Exact closed-form knee (the old bisection reported 5.1767e-04).
        assert "5.1766e-04" in out
        assert "concentrator" in out
        assert "per-resource saturation" in out


class TestSweep:
    def test_sweep_rows(self, capsys):
        code, out, _ = run_cli(capsys, "sweep", "--system", "544", "--points", "4")
        assert code == 0
        assert out.count("\n") >= 6
        assert "lambda_g" in out

    def test_scenario_list_rejects_config(self, capsys, tmp_path):
        """A multi-scenario list bypasses resolve_spec, so --config must be
        rejected loudly, never silently dropped."""
        code, _, err = run_cli(
            capsys, "sweep", "--scenario", "544,1120", "--config", str(tmp_path / "x.json")
        )
        assert code == 2
        assert "conflicts with --config/--system" in err


class TestSimulate:
    def test_simulate_small_run(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "simulate",
            "--system",
            "544",
            "--load",
            "2e-4",
            "--messages",
            "500",
            "--seed",
            "1",
        )
        assert code == 0
        assert "simulated mean latency" in out
        assert "completed=True" in out


class TestValidate:
    def test_validate_curve(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "validate",
            "--system",
            "544",
            "--points",
            "2",
            "--messages",
            "500",
        )
        assert code == 0
        assert "model" in out and "simulation" in out


class TestCapacity:
    def test_feasible_budget(self, capsys):
        code, out, _ = run_cli(capsys, "capacity", "--system", "544", "--budget", "60")
        assert code == 0
        assert "feasible" in out

    def test_infeasible_budget(self, capsys):
        code, out, _ = run_cli(capsys, "capacity", "--system", "544", "--budget", "1")
        assert code == 0
        assert "INFEASIBLE" in out

    def test_no_budget_anywhere_is_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "capacity", "--system", "544")
        assert code == 2
        assert "latency_budget" in err


class TestScenarioSelection:
    def test_scenario_flag(self, capsys):
        code, out, _ = run_cli(capsys, "describe", "--scenario", "het8-split")
        assert code == 0
        assert "N=544" in out and "C=8" in out

    def test_system_is_an_alias(self, capsys):
        _, via_system, _ = run_cli(capsys, "describe", "--system", "544")
        _, via_scenario, _ = run_cli(capsys, "describe", "--scenario", "544")
        assert via_system == via_scenario

    def test_conflicting_selectors_rejected(self, capsys, tmp_path):
        """--config plus --scenario must error, not silently pick one."""
        cfg = tmp_path / "s.json"
        run_cli(capsys, "export-config", "--system", "544", "--out", str(cfg))
        code, _, err = run_cli(capsys, "sweep", "--scenario", "1120", "--config", str(cfg))
        assert code == 2
        assert "conflicting scenario selectors" in err
        code, _, err = run_cli(capsys, "describe", "--scenario", "1120", "--system", "544")
        assert code == 2
        assert "conflicting scenario selectors" in err

    def test_unknown_scenario_is_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "describe", "--scenario", "not-a-scenario")
        assert code == 2
        assert err.startswith("error:")
        assert "available" in err

    def test_missing_config_file_is_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "sweep", "--config", "/no/such/config.json")
        assert code == 2
        assert err.startswith("error:")

    def test_config_file_roundtrip_reproduces_preset(self, capsys, tmp_path):
        """export-config -> sweep --config must match sweep --system bit-for-bit."""
        path = tmp_path / "cfg.json"
        code, _, _ = run_cli(capsys, "export-config", "--system", "1120", "--out", str(path))
        assert code == 0
        _, via_config, _ = run_cli(capsys, "sweep", "--config", str(path))
        _, via_system, _ = run_cli(capsys, "sweep", "--system", "1120")
        assert via_config == via_system

    def test_pattern_flag(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "latency",
            "--system",
            "544",
            "--load",
            "2e-4",
            "--pattern",
            "hotspot:hot_cluster=3,hot_fraction=0.2",
        )
        assert code == 0
        assert "mean message latency" in out

    def test_unknown_pattern_is_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "latency", "--system", "544", "--load", "2e-4", "--pattern", "zipf"
        )
        assert code == 2
        assert "unknown traffic pattern" in err

    def test_option_flag_changes_result(self, capsys):
        _, base, _ = run_cli(capsys, "saturation", "--system", "544")
        code, alt, _ = run_cli(
            capsys, "saturation", "--system", "544", "--option", "concentrator_rate=source_outgoing"
        )
        assert code == 0
        assert base != alt

    def test_unknown_option_is_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "describe", "--system", "544", "--option", "bogus=1")
        assert code == 2
        assert "unknown model option" in err


class TestScenariosCommand:
    def test_lists_all_registered(self, capsys):
        from repro.scenarios import scenario_names

        code, out, _ = run_cli(capsys, "scenarios")
        assert code == 0
        for name in scenario_names():
            assert name in out

    def test_show_one_as_json(self, capsys):
        import json

        code, out, _ = run_cli(capsys, "scenarios", "544-hotspot")
        assert code == 0
        data = json.loads(out)
        assert data["pattern"]["name"] == "hotspot"
        assert data["schema"] == "repro.scenario/1"


class TestExportConfig:
    def test_stdout_json_parses(self, capsys):
        import json

        code, out, _ = run_cli(capsys, "export-config", "--system", "544")
        assert code == 0
        data = json.loads(out)
        assert data["system"]["switch_ports"] == 4

    def test_export_honors_overrides(self, capsys):
        import json

        code, out, _ = run_cli(
            capsys, "export-config", "--system", "544", "--flits", "64", "--pattern", "locality:locality=0.5"
        )
        assert code == 0
        data = json.loads(out)
        assert data["message"]["length_flits"] == 64
        assert data["pattern"] == {"name": "locality", "params": {"locality": 0.5}}


class TestOutFlag:
    def test_sweep_csv(self, capsys, tmp_path):
        from repro.io import load_curve_csv

        path = tmp_path / "sweep.csv"
        code, out, _ = run_cli(
            capsys, "sweep", "--system", "544", "--points", "3", "--out", str(path)
        )
        assert code == 0
        assert f"wrote {path}" in out
        cols = load_curve_csv(path)
        assert set(cols) == {"load", "latency"}
        assert len(cols["load"]) == 3

    def test_sweep_json_schema(self, capsys, tmp_path):
        from repro.io import load_json

        path = tmp_path / "sweep.json"
        code, _, _ = run_cli(capsys, "sweep", "--system", "544", "--out", str(path))
        assert code == 0
        data = load_json(path)
        assert data["schema"] == "repro.experiment/1"
        assert data["kind"] == "sweep"
        assert data["scenario"] == "544"
        assert data["spec"]["system"]["name"] == "N544-m4-C16"
        assert len(data["data"]["columns"]["load"]) == 12

    def test_capacity_csv_round_trips_bool(self, capsys, tmp_path):
        from repro.io import load_curve_csv

        path = tmp_path / "cap.csv"
        code, _, _ = run_cli(
            capsys, "capacity", "--system", "544", "--budget", "60", "--out", str(path)
        )
        assert code == 0
        cols = load_curve_csv(path)
        assert cols["feasible"] == [True]

    def test_validate_honors_config_grid_points(self, capsys, tmp_path):
        """Regression: validate used to hardcode 5 points, silently ignoring
        a config's load_grid.points."""
        import json

        from repro.io import load_curve_csv
        from repro.scenarios import get_scenario

        spec = get_scenario("544")
        data = spec.to_dict()
        data["load_grid"]["points"] = 2
        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps(data))
        out = tmp_path / "val.csv"
        code, _, _ = run_cli(
            capsys, "validate", "--config", str(cfg), "--messages", "300", "--out", str(out)
        )
        assert code == 0
        assert len(load_curve_csv(out)["load"]) == 2

    def test_validate_default_grid_stays_at_five_points(self, capsys, tmp_path):
        """Without --points and without a scenario-customised grid, validate
        keeps its historical 5-simulation default (not the sweep's 12)."""
        out = tmp_path / "val5.csv"
        code, _, _ = run_cli(
            capsys, "validate", "--system", "544", "--messages", "300", "--out", str(out)
        )
        assert code == 0
        from repro.io import load_curve_csv

        assert len(load_curve_csv(out)["load"]) == 5

    def test_validate_csv(self, capsys, tmp_path):
        from repro.io import load_curve_csv

        path = tmp_path / "val.csv"
        code, _, _ = run_cli(
            capsys,
            "validate",
            "--system",
            "544",
            "--points",
            "2",
            "--messages",
            "500",
            "--out",
            str(path),
        )
        assert code == 0
        cols = load_curve_csv(path)
        assert set(cols) == {"load", "model", "simulation", "rel_error"}

    def test_unknown_extension_is_clean_error(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "sweep", "--system", "544", "--out", str(tmp_path / "x.txt")
        )
        assert code == 2
        assert ".json or .csv" in err

    def test_export_config_rejects_csv_out(self, capsys, tmp_path):
        """export-config only writes JSON; a .csv --out must fail, not
        silently produce a JSON-bodied .csv file."""
        path = tmp_path / "x.csv"
        code, _, err = run_cli(capsys, "export-config", "--system", "544", "--out", str(path))
        assert code == 2
        assert ".json" in err
        assert not path.exists()

    def test_pattern_missing_params_is_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "latency", "--system", "544", "--load", "2e-4", "--pattern", "hotspot"
        )
        assert code == 2
        assert "invalid parameters" in err


class TestWhatIf:
    def test_whatif_curves(self, capsys):
        code, out, _ = run_cli(capsys, "whatif", "--system", "544", "--factor", "1.2")
        assert code == 0
        assert "saturation gain" in out

    def test_whatif_csv_out(self, capsys, tmp_path):
        from repro.io import load_curve_csv

        path = tmp_path / "whatif.csv"
        code, out, _ = run_cli(
            capsys, "whatif", "--system", "544", "--out", str(path)
        )
        assert code == 0
        assert f"wrote {path}" in out
        assert set(load_curve_csv(path)) == {"load", "base", "variant"}


class TestBottlenecks:
    def test_default_load_reports_binding(self, capsys):
        code, out, _ = run_cli(capsys, "bottlenecks", "--system", "544")
        assert code == 0
        assert "binding resource" in out
        assert "concentrator" in out

    def test_explicit_load_and_csv_out(self, capsys, tmp_path):
        from repro.io import load_curve_csv

        path = tmp_path / "bn.csv"
        code, out, _ = run_cli(
            capsys, "bottlenecks", "--system", "544", "--load", "2e-4", "--out", str(path)
        )
        assert code == 0
        assert f"wrote {path}" in out
        cols = load_curve_csv(path)
        assert set(cols) == {"resource", "kind", "utilization"}
        assert len(cols["resource"]) >= 2

    def test_bad_out_extension_rejected_before_compute(self, capsys, tmp_path):
        path = tmp_path / "bn.txt"
        code, _, err = run_cli(
            capsys, "bottlenecks", "--system", "544", "--out", str(path)
        )
        assert code == 2
        assert ".json or .csv" in err
        assert not path.exists()


class TestKnee:
    @pytest.fixture()
    def tiny_config(self, tmp_path):
        from repro.cluster import homogeneous_system
        from repro.scenarios import ScenarioSpec

        path = tmp_path / "tiny.json"
        ScenarioSpec(
            name="tiny",
            system=homogeneous_system(switch_ports=4, tree_depth=1, num_clusters=4),
        ).save(path)
        return str(path)

    def test_knee_with_csv_out(self, capsys, tiny_config, tmp_path):
        from repro.io import load_curve_csv

        path = tmp_path / "knee.csv"
        code, out, _ = run_cli(
            capsys, "knee", "--config", tiny_config,
            "--messages", "150", "--iterations", "2", "--out", str(path),
        )
        assert code == 0
        assert "simulated knee" in out
        cols = load_curve_csv(path)
        assert set(cols) == {
            "sim_knee", "model_saturation", "knee_fraction", "threshold_factor"
        }
        assert len(cols["sim_knee"]) == 1

    def test_bad_out_extension_rejected_before_compute(self, capsys, tmp_path):
        path = tmp_path / "knee.txt"
        code, _, err = run_cli(
            capsys, "knee", "--system", "544", "--out", str(path)
        )
        assert code == 2
        assert ".json or .csv" in err
        assert not path.exists()


class TestPerformability:
    @pytest.fixture()
    def failures_file(self, tmp_path):
        from repro.performability import FailureMode, FailureScenario

        path = tmp_path / "failures.json"
        FailureScenario(
            modes=(
                FailureMode(kind="node", failure_rate=1e-4, repair_rate=1e-2),
                FailureMode(kind="switch", role="icn2", failure_rate=1e-5, repair_rate=1e-2),
            ),
            max_concurrent=2,
            name="cli-smoke",
        ).save(path)
        return str(path)

    def test_reports_weighted_metrics(self, capsys, failures_file):
        code, out, _ = run_cli(
            capsys, "performability", "--scenario", "544", "--failures", failures_file
        )
        assert code == 0
        assert "availability state(s)" in out
        assert "λ*_A availability-weighted" in out
        assert "which failure hurts most" in out

    def test_cache_serves_second_run_bit_identical(self, capsys, failures_file, tmp_path):
        cache = str(tmp_path / "cache")
        out_a, out_b = tmp_path / "a.csv", tmp_path / "b.csv"
        code, first, _ = run_cli(
            capsys, "performability", "--scenario", "544",
            "--failures", failures_file, "--jobs", "2",
            "--cache", cache, "--out", str(out_a),
        )
        assert code == 0
        assert "evaluated 2 of 4 states (0 from cache" in first
        code, second, _ = run_cli(
            capsys, "performability", "--scenario", "544",
            "--failures", failures_file,
            "--cache", cache, "--out", str(out_b),
        )
        assert code == 0
        assert "evaluated 0 of 4 states (4 from cache" in second
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_json_out_is_self_describing(self, capsys, failures_file, tmp_path):
        from repro.io import load_json

        path = tmp_path / "perf.json"
        code, _, _ = run_cli(
            capsys, "performability", "--scenario", "544",
            "--failures", failures_file, "--out", str(path),
        )
        assert code == 0
        payload = load_json(path)
        assert payload["kind"] == "performability"
        assert payload["spec"]["failures"]["schema"] == "repro.performability/1"
        assert payload["data"]["saturation_load_weighted"] < payload["data"]["saturation_load_pristine"]

    def test_disconnecting_spec_is_clean_error_naming_state(self, capsys, tmp_path):
        from repro.performability import FailureMode, FailureScenario

        path = tmp_path / "bad.json"
        # The 544 preset's ICN2 top level has 4 switches; tracking 4
        # simultaneous losses reaches a disconnected state.
        FailureScenario(
            modes=(
                FailureMode(
                    kind="switch", role="icn2", count=4,
                    failure_rate=1e-5, repair_rate=1e-2,
                ),
            ),
        ).save(path)
        code, _, err = run_cli(
            capsys, "performability", "--scenario", "544", "--failures", str(path)
        )
        assert code == 2
        assert "availability state 'icn2-switch=4' is invalid" in err
        assert "disconnect the fabric" in err

    def test_missing_failures_file_is_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "performability", "--scenario", "544",
            "--failures", "/no/such/failures.json",
        )
        assert code == 2
        assert err.startswith("error:")

    def test_bad_out_extension_rejected_before_compute(self, capsys, failures_file, tmp_path):
        path = tmp_path / "perf.txt"
        code, _, err = run_cli(
            capsys, "performability", "--scenario", "544",
            "--failures", failures_file, "--out", str(path),
        )
        assert code == 2
        assert ".json or .csv" in err
        assert not path.exists()


class TestValidateGranularity:
    def test_flit_granularity_end_to_end(self, capsys, tmp_path):
        """Regression: the CLI never exposed the flit-level reference
        engine on validate (tiny N keeps the run cheap)."""
        from repro.cluster import homogeneous_system
        from repro.scenarios import ScenarioSpec

        cfg = tmp_path / "small.json"
        ScenarioSpec(
            name="flit-cli-smoke",
            system=homogeneous_system(switch_ports=4, tree_depth=1, num_clusters=4),
        ).save(cfg)
        code, out, _ = run_cli(
            capsys,
            "validate",
            "--config", str(cfg),
            "--points", "2",
            "--messages", "150",
            "--granularity", "flit",
        )
        assert code == 0
        assert "rel_error" in out or "model" in out

    def test_rejects_unknown_granularity(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["validate", "--granularity", "byte"])


class TestExplore:
    AXES = [
        "--axis", "system.icn2.bandwidth=500,600",
        "--axis", "message.length_flits=32,64",
    ]

    def test_axis_grid_runs(self, capsys):
        code, out, _ = run_cli(capsys, "explore", "--scenario", "544", *self.AXES)
        assert code == 0
        assert "4 cells" in out
        assert "544/system.icn2.bandwidth=600/message.length_flits=64" in out
        assert "evaluated 4 of 4 cells" in out

    def test_cache_serves_second_run(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        out_a = tmp_path / "a.csv"
        out_b = tmp_path / "b.csv"
        code, first, _ = run_cli(
            capsys, "explore", "--scenario", "544", *self.AXES,
            "--cache", cache, "--out", str(out_a),
        )
        assert code == 0 and "evaluated 4 of 4 cells (0 from cache" in first
        code, second, _ = run_cli(
            capsys, "explore", "--scenario", "544", *self.AXES,
            "--jobs", "2", "--cache", cache, "--out", str(out_b),
        )
        assert code == 0 and "evaluated 0 of 4 cells (4 from cache" in second
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_frontier_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "explore", "--scenario", "544", *self.AXES, "--frontier"
        )
        assert code == 0
        assert "Pareto frontier" in out
        assert "axis sensitivity" in out

    def test_grid_file(self, capsys, tmp_path):
        from repro.scenarios import AxisSpec, DesignGrid, get_scenario

        path = tmp_path / "grid.json"
        DesignGrid(
            base=get_scenario("544"),
            axes=(AxisSpec("system.icn2.bandwidth", (500.0, 600.0)),),
        ).save(path)
        code, out, _ = run_cli(capsys, "explore", "--grid", str(path))
        assert code == 0
        assert "2 cells" in out

    def test_grid_conflicts_with_axis(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "explore", "--grid", str(tmp_path / "g.json"), *self.AXES
        )
        assert code == 2
        assert "conflicts with --axis" in err

    def test_requires_an_axis(self, capsys):
        code, _, err = run_cli(capsys, "explore", "--scenario", "544")
        assert code == 2
        assert "at least one --axis" in err

    def test_bad_axis_path_is_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "explore", "--scenario", "544", "--axis", "system.icn2.bandwdith=500"
        )
        assert code == 2
        assert "unknown key" in err

    def test_budget_flag_fills_lambda_at_budget(self, capsys, tmp_path):
        from repro.io import load_json

        out = tmp_path / "explore.json"
        code, _, _ = run_cli(
            capsys, "explore", "--scenario", "544",
            "--axis", "system.icn2.bandwidth=500,600",
            "--budget", "60", "--out", str(out),
        )
        assert code == 0
        payload = load_json(out)
        for value in payload["data"]["columns"]["lambda_at_budget"]:
            assert value > 0


class TestCalibrate:
    @pytest.fixture()
    def tiny_config(self, tmp_path):
        from repro.cluster import homogeneous_system
        from repro.core import MessageSpec
        from repro.scenarios import ScenarioSpec

        path = tmp_path / "tiny.json"
        ScenarioSpec(
            name="tiny",
            system=homogeneous_system(switch_ports=4, tree_depth=2, num_clusters=4),
            message=MessageSpec(16, 256.0),
        ).save(path)
        return str(path)

    def test_vary_run_with_csv_out(self, capsys, tiny_config, tmp_path):
        from repro.io import load_curve_csv

        out = tmp_path / "cal.csv"
        code, text, _ = run_cli(
            capsys, "calibrate", "--config", tiny_config,
            "--vary", "relaxing_factor=true,false",
            "--messages", "200", "--out", str(out),
        )
        assert code == 0
        assert "calibration of 2 option combinations" in text
        assert "global winner:" in text
        columns = load_curve_csv(out)
        assert columns["combination"] == ["relaxing_factor=True", "relaxing_factor=False"]
        assert columns["relaxing_factor"] == [True, False]

    def test_fix_restricts_the_space(self, capsys, tiny_config):
        code, text, _ = run_cli(
            capsys, "calibrate", "--config", tiny_config,
            "--fix", "tcn_convention=half_network_latency",
            "--fix", "source_queue_rate=paper",
            "--fix", "variance_approximation=paper",
            "--fix", "inter_average=paper",
            "--fix", "concentrator_rate=pair_mean",
            "--fractions", "0.2,0.5",
            "--messages", "200", "--seed", "2", "--seed-stride", "0",
        )
        assert code == 0
        assert "calibration of 2 option combinations" in text
        assert "loads at 0.2, 0.5" in text

    def test_cache_serves_second_run(self, capsys, tiny_config, tmp_path):
        cache = str(tmp_path / "cache")
        args = (
            "calibrate", "--config", tiny_config,
            "--vary", "relaxing_factor=true,false",
            "--messages", "200", "--cache", cache,
        )
        code, first, _ = run_cli(capsys, *args)
        assert code == 0 and "simulated 4 point(s) (0 of 1 curves from cache" in first
        code, second, _ = run_cli(capsys, *args, "--jobs", "2")
        assert code == 0 and "simulated 0 point(s) (1 of 1 curves from cache" in second
        strip = lambda text: [l for l in text.splitlines() if not l.startswith("simulated")]
        assert strip(first) == strip(second)

    def test_unknown_fix_knob_is_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "calibrate", "--scenario", "544", "--fix", "drain_model=x"
        )
        assert code == 2
        assert "unknown model option" in err

    def test_bad_vary_value_is_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "calibrate", "--scenario", "544", "--vary", "relaxing_factor=maybe"
        )
        assert code == 2
        assert "relaxing_factor must be true/false" in err

    def test_bad_fractions_is_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "calibrate", "--scenario", "544", "--fractions", "0.2;0.4"
        )
        assert code == 2
        assert "--fractions" in err

    def test_multi_scenario_rejects_overrides(self, capsys):
        code, _, err = run_cli(
            capsys, "calibrate", "--scenario", "544,1120", "--flits", "64"
        )
        assert code == 2
        assert "does not support" in err

    def test_multi_scenario_rejects_config(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "calibrate", "--scenario", "544,1120", "--config", str(tmp_path / "x.json")
        )
        assert code == 2
        assert "conflicts with --config/--system" in err
