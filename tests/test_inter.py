"""Inter-cluster model tests (core.inter vs paper §3.2)."""

import pytest

from repro.core import (
    NET1,
    NET2,
    MessageSpec,
    ModelOptions,
    ServiceTimes,
    inter_pair_latency,
    journey_length_pmf,
    pair_rates,
)
from repro.core.parameters import ClusterClass

MSG = MessageSpec(32, 256.0)


def make_class(tree_depth, nodes, u, name="x"):
    return ClusterClass(tree_depth=tree_depth, nodes=nodes, count=1, u=u, icn1=NET1, ecn1=NET2, name=name)


def evaluate(src, dst, lam, **kw):
    return inter_pair_latency(
        src,
        dst,
        switch_ports=8,
        icn2=NET1,
        icn2_tree_depth=2,
        generation_rate=lam,
        message=MSG,
        **kw,
    )


class TestRates:
    def test_eq22_eq23(self):
        src = make_class(3, 128, 0.886)
        dst = make_class(2, 32, 0.972)
        lam_e1, lam_i2 = pair_rates(src, dst, 1e-4)
        expected = 1e-4 * (128 * 0.886 + 32 * 0.972)
        assert lam_e1 == pytest.approx(expected)
        assert lam_i2 == pytest.approx(expected / 2)

    def test_channel_rates_use_source_geometry(self):
        src = make_class(3, 128, 0.9)
        dst = make_class(1, 8, 0.99)
        result = evaluate(src, dst, 1e-4)
        from repro.core import mean_journey_links

        lam_e1 = 1e-4 * (128 * 0.9 + 8 * 0.99)
        assert result.ecn1_channel_rate == pytest.approx(lam_e1 * mean_journey_links(8, 3) / (4 * 3 * 128))
        assert result.icn2_channel_rate == pytest.approx(0.5 * lam_e1 * mean_journey_links(8, 2) / (4 * 2))


class TestZeroLoad:
    def test_zero_load_structure(self):
        src = make_class(2, 32, 0.97)
        dst = make_class(2, 32, 0.97)
        result = evaluate(src, dst, 0.0)
        st_e1 = ServiceTimes.for_network(NET2, MSG)
        st_i2 = ServiceTimes.for_network(NET1, MSG)
        # At lambda = 0 the pipeline reduces to the stage-0 transfer time.
        # Stage 0 is an ECN1(i) switch stage unless r == ... r>=1 always,
        # so stage 0 type is t_cs(E1) except for the degenerate single-stage
        # journey (impossible inter-cluster: K >= 3).
        assert result.network_latency == pytest.approx(32 * st_e1.t_cs)
        # Eq. 34: E = (r-1) t_cs_i + (v-1) t_cs_j + 2l t_cs_I2 + t_cn_j.
        pmf = journey_length_pmf(8, 2)
        e_r = sum(pmf[r - 1] * (r - 1) for r in (1, 2)) * st_e1.t_cs
        e_l = sum(pmf[l - 1] * 2 * l for l in (1, 2)) * st_i2.t_cs
        expected_tail = e_r + e_r + e_l + st_e1.t_cn
        assert result.tail_time == pytest.approx(expected_tail)
        assert result.source_wait == 0.0


class TestOptions:
    def test_relaxing_factor_reduces_latency(self):
        src = make_class(2, 32, 0.97)
        dst = make_class(2, 32, 0.97)
        with_delta = evaluate(src, dst, 3e-4)
        without = evaluate(src, dst, 3e-4, options=ModelOptions(relaxing_factor=False))
        # delta = beta_I2/beta_E1 = 0.5 < 1 shrinks ICN2 stage waits.
        assert with_delta.network_latency < without.network_latency
        assert with_delta.relaxing_factor == pytest.approx(0.5)

    def test_aggregate_pair_rate_saturates_much_earlier(self):
        src = make_class(3, 128, 0.886)
        dst = make_class(3, 128, 0.886)
        lam = 2e-4
        paper = evaluate(src, dst, lam)
        literal = evaluate(src, dst, lam, options=ModelOptions(source_queue_rate="aggregate_pair"))
        assert not paper.saturated
        assert literal.saturated  # DESIGN.md §3 item 8

    def test_source_queue_uses_per_node_inter_rate(self):
        src = make_class(2, 32, 0.9)
        dst = make_class(2, 32, 0.9)
        result = evaluate(src, dst, 1e-3)
        assert result.source_utilization == pytest.approx(1e-3 * 0.9 * result.network_latency)


class TestBehaviour:
    def test_monotone_in_load(self):
        src = make_class(2, 32, 0.97)
        dst = make_class(1, 8, 0.99)
        totals = [evaluate(src, dst, lam).total for lam in (1e-5, 1e-4, 5e-4)]
        assert totals[0] < totals[1] < totals[2]

    def test_asymmetric_pairs_differ(self):
        big = make_class(3, 128, 0.886)
        small = make_class(1, 8, 0.993)
        ab = evaluate(big, small, 2e-4)
        ba = evaluate(small, big, 2e-4)
        # Different source geometry and source-queue load: not symmetric.
        assert ab.total != pytest.approx(ba.total)

    def test_longer_trees_give_longer_latency(self):
        shallow = evaluate(make_class(1, 8, 0.99), make_class(1, 8, 0.99), 1e-5)
        deep = evaluate(make_class(3, 128, 0.9), make_class(3, 128, 0.9), 1e-5)
        assert deep.tail_time > shallow.tail_time
