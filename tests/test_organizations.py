"""Organisation generators and paper Table 1 tests (cluster.organizations)."""

import numpy as np
import pytest

from repro.cluster import (
    homogeneous_system,
    organization_string,
    paper_organizations,
    random_heterogeneous_system,
    table1_rows,
)


class TestTable1:
    def test_rows_match_paper(self):
        rows = table1_rows()
        assert rows[0] == {
            "N": 1120,
            "C": 32,
            "m": 8,
            "organization": "n=1 x12, n=2 x16, n=3 x4",
        }
        assert rows[1] == {
            "N": 544,
            "C": 16,
            "m": 4,
            "organization": "n=3 x8, n=4 x3, n=5 x5",
        }

    def test_paper_organizations_order(self):
        big, small = paper_organizations()
        assert big.total_nodes == 1120
        assert small.total_nodes == 544


class TestGenerators:
    def test_homogeneous(self):
        cfg = homogeneous_system(switch_ports=8, tree_depth=2, num_clusters=8)
        assert cfg.total_nodes == 8 * 32
        assert len(set(s.tree_depth for s in cfg.clusters)) == 1

    def test_homogeneous_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            homogeneous_system(switch_ports=8, tree_depth=1, num_clusters=3)

    def test_random_heterogeneous_depths_in_range(self):
        rng = np.random.default_rng(1)
        cfg = random_heterogeneous_system(rng, switch_ports=4, num_clusters=8, min_depth=1, max_depth=3)
        assert all(1 <= s.tree_depth <= 3 for s in cfg.clusters)
        assert cfg.num_clusters == 8

    def test_random_heterogeneous_reproducible(self):
        a = random_heterogeneous_system(np.random.default_rng(7), switch_ports=4, num_clusters=4)
        b = random_heterogeneous_system(np.random.default_rng(7), switch_ports=4, num_clusters=4)
        assert a.cluster_sizes == b.cluster_sizes

    def test_organization_string_run_lengths(self):
        cfg = homogeneous_system(switch_ports=4, tree_depth=2, num_clusters=4)
        assert organization_string(cfg) == "n=2 x4"
