"""Stacked-engine equivalence suite (core.stacked): bit-identity per cell.

The cross-cell :class:`StackedModel` swaps in silently for per-cell
:class:`BatchedModel` evaluation inside explore, performability and
calibrate, so its contract is *bit-for-bit* equality — not round-off
closeness — for every metric those consumers read: per-resource
saturation dictionaries, binding resources, λ*, zero-load floors, auto
load grids, latency curves, knee loads and budget capacities.  The suite
locks that contract across the full scenario registry (which includes
the m=8 heterogeneity ladder), ragged mixed-topology cell sets (padding
+ masks), the ``ModelOptions`` ablation space and performability
degraded states including single-cluster/single-stage edge systems.
"""

import numpy as np
import pytest

from repro.analysis.capacity import max_load_for_latency
from repro.cluster import homogeneous_system
from repro.core import MessageSpec
from repro.core.batch import BatchedModel
from repro.core.parameters import ModelOptions
from repro.core.stacked import StackedModel
from repro.core.sweep import auto_load_grid
from repro.experiments.explore import _model_knee
from repro.performability import FailureMode, FailureScenario, expand_states
from repro.scenarios import ScenarioSpec, get_scenario
from repro.scenarios.registry import iter_scenarios

REGISTRY = list(iter_scenarios())


def per_cell_engines(cells):
    return [BatchedModel(*cell) for cell in cells]


def assert_stack_matches(cells, names=None):
    """Every consumer-facing metric, stacked vs per-cell, bit for bit."""
    names = names or [f"cell{idx}" for idx in range(len(cells))]
    stack = StackedModel(cells)
    engines = per_cell_engines(cells)

    sat_s = stack.saturation_loads()
    bind_s = stack.binding_resources()
    lam_s = stack.saturation_load()
    zero_s = stack.zero_load_latencies()
    grids_s = stack.auto_load_grids()
    curves_s = stack.evaluate_latencies(grids_s)
    for idx, (name, engine) in enumerate(zip(names, engines)):
        assert engine.saturation_loads() == sat_s[idx], name
        assert engine.binding_resource() == bind_s[idx], name
        assert engine.saturation_load() == lam_s[idx], name
        assert engine.zero_load_latency() == zero_s[idx], name
        grid = auto_load_grid(engine)
        assert np.array_equal(grid, grids_s[idx]), name
        curve = engine.evaluate_many(grid, with_results=False).latencies
        assert np.array_equal(curve, curves_s[idx]), name
    return stack, engines


class TestRegistryEquivalence:
    """Every registry scenario in ONE stack, metrics equal per cell."""

    @pytest.fixture(scope="class")
    def specs(self):
        return [spec for _, spec in REGISTRY]

    @pytest.fixture(scope="class")
    def stack(self, specs):
        return StackedModel.from_specs(specs)

    @pytest.fixture(scope="class")
    def engines(self, specs):
        return [
            BatchedModel(s.system, s.message, s.options, s.pattern) for s in specs
        ]

    def test_saturation_dicts_bitwise(self, stack, engines):
        stacked = stack.saturation_loads()
        for (name, _), engine, entry in zip(REGISTRY, engines, stacked):
            assert engine.saturation_loads() == entry, name

    def test_binding_and_lambda_star(self, stack, engines):
        binding = stack.binding_resources()
        lam = stack.saturation_load()
        for idx, ((name, _), engine) in enumerate(zip(REGISTRY, engines)):
            assert engine.binding_resource() == binding[idx], name
            assert engine.saturation_load() == lam[idx], name

    def test_zero_load_and_grids(self, stack, engines):
        zero = stack.zero_load_latencies()
        grids = stack.auto_load_grids()
        for idx, ((name, _), engine) in enumerate(zip(REGISTRY, engines)):
            assert engine.zero_load_latency() == zero[idx], name
            assert np.array_equal(auto_load_grid(engine), grids[idx]), name

    def test_latency_curves_bitwise(self, stack, engines):
        grids = stack.auto_load_grids()
        curves = stack.evaluate_latencies(grids)
        for idx, ((name, _), engine) in enumerate(zip(REGISTRY, engines)):
            reference = engine.evaluate_many(grids[idx], with_results=False).latencies
            assert np.array_equal(reference, curves[idx]), name

    def test_knee_loads_bitwise(self, stack, engines):
        knees = stack.knee_loads(4.0)
        for idx, ((name, _), engine) in enumerate(zip(REGISTRY, engines)):
            reference = _model_knee(
                engine, engine.saturation_load(), engine.zero_load_latency(), 4.0
            )
            assert reference == knees[idx], name

    def test_budget_capacities_bitwise(self, stack, engines, specs):
        # NaN budgets (no latency_budget on the spec) must stay NaN; the
        # finite ones must equal the scalar capacity planner's plan.
        budgets = np.array(
            [
                2.5 * engine.zero_load_latency() if idx % 3 else float("nan")
                for idx, engine in enumerate(engines)
            ]
        )
        achieved = stack.loads_at_budget(budgets)
        for idx, ((name, _), spec) in enumerate(zip(REGISTRY, specs)):
            if np.isnan(budgets[idx]):
                assert np.isnan(achieved[idx]), name
            else:
                plan = max_load_for_latency(
                    spec.system,
                    spec.message,
                    float(budgets[idx]),
                    options=spec.options,
                    engine=engines[idx],
                )
                assert plan.achieved == achieved[idx], name


class TestHeterogeneityLadder:
    """The m=8 ladder stacks into one group family with class padding."""

    def test_ladder_stack_matches_per_cell(self):
        names = ["het8-uniform", "het8-mild", "het8-split", "het8-extreme"]
        specs = [get_scenario(name) for name in names]
        assert_stack_matches(
            [(s.system, s.message, s.options, s.pattern) for s in specs], names
        )


class TestRaggedMixedTopologies:
    """Cells with different m, C, depths and cluster classes in one stack."""

    def test_mixed_cells_match_per_cell(self):
        message = MessageSpec(32, 256.0)
        mixed = [
            ("544", get_scenario("544")),
            ("1120", get_scenario("1120")),
            ("het8-extreme", get_scenario("het8-extreme")),
            ("544-x4", get_scenario("544-x4")),
            ("544-hotspot", get_scenario("544-hotspot")),
        ]
        cells = [(s.system, s.message, s.options, s.pattern) for _, s in mixed]
        # Edge systems: a single-cluster stack cell (no pair journeys at
        # all — the mask must zero the inter-cluster terms exactly) and a
        # minimal-depth single-stage cluster.
        cells.append(
            (homogeneous_system(switch_ports=4, tree_depth=1, num_clusters=1), message, None, None)
        )
        cells.append(
            (homogeneous_system(switch_ports=4, tree_depth=1, num_clusters=4), message, None, None)
        )
        names = [name for name, _ in mixed] + ["single-cluster", "depth-1"]
        stack, _ = assert_stack_matches(cells, names)
        # Heterogeneous shapes must not collapse into one padded group by
        # accident: group signatures separate the topology families.
        assert len(stack.plan.groups) > 1

    def test_duplicate_cells_share_results(self):
        spec = get_scenario("544")
        cells = [(spec.system, spec.message, spec.options, spec.pattern)] * 3
        stack = StackedModel(cells)
        lam = stack.saturation_load()
        assert lam[0] == lam[1] == lam[2]


class TestOptionSpace:
    """The full ModelOptions ablation space, stacked over two topologies."""

    def test_all_option_combinations_match_per_cell(self):
        import itertools

        domains = ModelOptions.option_values()
        cells = []
        names = []
        for assignment in itertools.product(*domains.values()):
            options = ModelOptions(**dict(zip(domains, assignment)))
            for base in ("544", "het8-mild"):
                spec = get_scenario(base)
                cells.append((spec.system, spec.message, options, spec.pattern))
                names.append(f"{base}/{assignment}")
        stack = StackedModel(cells)
        grids = stack.auto_load_grids()
        curves = stack.evaluate_latencies(grids)
        lam = stack.saturation_load()
        for idx, cell in enumerate(cells):
            engine = BatchedModel(*cell)
            assert engine.saturation_load() == lam[idx], names[idx]
            grid = auto_load_grid(engine)
            assert np.array_equal(grid, grids[idx]), names[idx]
            reference = engine.evaluate_many(grid, with_results=False).latencies
            assert np.array_equal(reference, curves[idx]), names[idx]


class TestPerformabilityDegradedStates:
    """Degraded-system stacks: what performability_analysis prices."""

    @pytest.fixture(scope="class")
    def degraded_specs(self):
        spec = get_scenario("544")
        failures = FailureScenario(
            modes=(
                FailureMode(kind="node", failure_rate=1e-4, repair_rate=1e-2),
                FailureMode(kind="switch", role="icn2", failure_rate=1e-5, repair_rate=1e-2),
                FailureMode(kind="link", role="icn2", failure_rate=1e-5, repair_rate=1e-2),
            ),
            max_concurrent=2,
            name="equivalence",
        )
        states = expand_states(spec.system, failures)
        specs = [
            ScenarioSpec.from_dict({**spec.to_dict(), "system": st.system.to_dict()})
            for st in states
        ]
        return spec, states, specs

    def test_degraded_states_match_per_state_engine(self, degraded_specs):
        spec, states, specs = degraded_specs
        pristine = BatchedModel(spec.system, spec.message, spec.options, spec.pattern)
        loads = np.asarray(
            [float(v) for v in spec.load_grid.grid(pristine)], dtype=np.float64
        )
        stack = StackedModel.from_specs(specs)
        latencies = stack.evaluate_latencies(loads)
        lam = stack.saturation_load()
        binding = stack.binding_resources()
        zero = stack.zero_load_latencies()
        for idx, (st, degraded) in enumerate(zip(states, specs)):
            engine = BatchedModel(
                degraded.system, degraded.message, degraded.options, degraded.pattern
            )
            assert engine.saturation_load() == lam[idx], st.label
            assert engine.binding_resource() == binding[idx], st.label
            assert engine.zero_load_latency() == zero[idx], st.label
            reference = engine.evaluate_many(loads, with_results=False).latencies
            assert np.array_equal(reference, latencies[idx]), st.label

    def test_single_cluster_degraded_edge(self):
        # The smallest stackable systems: one cluster (no inter-cluster
        # journeys) next to a two-cluster sibling in the same stack.
        message = MessageSpec(16, 128.0)
        cells = [
            (homogeneous_system(switch_ports=4, tree_depth=1, num_clusters=1), message, None, None),
            (homogeneous_system(switch_ports=4, tree_depth=1, num_clusters=4), message, None, None),
            (homogeneous_system(switch_ports=4, tree_depth=2, num_clusters=1), message, None, None),
        ]
        assert_stack_matches(cells, ["C1-d1", "C4-d1", "C1-d2"])
