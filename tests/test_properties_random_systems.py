"""Hypothesis property tests over randomly generated organisations.

The model must behave sanely for *any* valid cluster-of-clusters system,
not just the two paper organisations.  These properties pin down global
invariants: probability normalisation, monotonicity, composition bounds
and saturation structure.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnalyticalModel, MessageSpec
from repro.core.parameters import ClusterSpec, SystemConfig
from repro.core.sweep import find_saturation_load


@st.composite
def random_system(draw):
    m = draw(st.sampled_from([4, 6, 8]))
    q = m // 2
    # valid cluster counts: C = 2 q^k
    k = draw(st.integers(1, 2 if q > 2 else 3))
    c = 2 * q**k
    depths = draw(st.lists(st.integers(1, 3), min_size=c, max_size=c))
    clusters = tuple(ClusterSpec(tree_depth=d, name=f"c{i}") for i, d in enumerate(depths))
    return SystemConfig(switch_ports=m, clusters=clusters, name="prop")


@st.composite
def random_message(draw):
    return MessageSpec(draw(st.sampled_from([8, 16, 32, 64])), draw(st.sampled_from([64.0, 256.0, 512.0])))


class TestUniversalInvariants:
    @given(random_system())
    @settings(max_examples=25)
    def test_outgoing_probabilities_normalised(self, system):
        total = system.total_nodes
        for i in range(system.num_clusters):
            u = system.outgoing_probability(i)
            assert 0.0 <= u <= 1.0
            # Exactly the complement of the intra-destination fraction.
            n_i = system.cluster_sizes[i]
            assert u == pytest.approx(1 - (n_i - 1) / (total - 1))

    @given(random_system())
    @settings(max_examples=25)
    def test_class_counts_cover_system(self, system):
        classes = system.cluster_classes()
        assert sum(c.count for c in classes) == system.num_clusters
        assert sum(c.count * c.nodes for c in classes) == system.total_nodes

    @given(random_system(), random_message())
    @settings(max_examples=20)
    def test_zero_load_latency_positive_and_finite(self, system, message):
        latency = AnalyticalModel(system, message).zero_load_latency()
        assert np.isfinite(latency)
        assert latency > 0

    @given(random_system(), random_message())
    @settings(max_examples=15)
    def test_latency_monotone_in_load(self, system, message):
        model = AnalyticalModel(system, message)
        lam_star = find_saturation_load(model)
        lats = [model.evaluate(f * lam_star).latency for f in (0.2, 0.5, 0.8)]
        assert lats[0] < lats[1] < lats[2]

    @given(random_system(), random_message())
    @settings(max_examples=15)
    def test_mean_is_convex_combination_of_components(self, system, message):
        """ℓ_i lies between L_in and L_out (Eq. 1 is a mixture)."""
        result = AnalyticalModel(system, message).evaluate(1e-5)
        for b in result.clusters:
            lo = min(b.intra.total, b.outward) if b.outward > 0 else b.intra.total
            hi = max(b.intra.total, b.outward)
            assert lo - 1e-9 <= b.mean <= hi + 1e-9

    @given(random_system())
    @settings(max_examples=15)
    def test_saturation_scales_inversely_with_message_length(self, system):
        short = find_saturation_load(AnalyticalModel(system, MessageSpec(16, 256.0)))
        long = find_saturation_load(AnalyticalModel(system, MessageSpec(32, 256.0)))
        assert long == pytest.approx(short / 2, rel=0.02)

    @given(random_system(), random_message())
    @settings(max_examples=15)
    def test_biggest_cluster_has_lowest_outgoing_probability(self, system, message):
        result = AnalyticalModel(system, message).evaluate(1e-6)
        by_nodes = sorted(result.clusters, key=lambda b: b.nodes)
        us = [b.outgoing_probability for b in by_nodes]
        assert all(a >= b - 1e-12 for a, b in zip(us, us[1:]))


class TestTopologyUniversals:
    @given(st.sampled_from([4, 6, 8, 10, 12]), st.integers(1, 4))
    @settings(max_examples=30)
    def test_population_identities(self, m, n):
        from repro.core import num_nodes, num_switches, switches_per_level

        q = m // 2
        assert num_nodes(m, n) == 2 * q**n
        assert num_switches(m, n) == (2 * n - 1) * q ** (n - 1)
        levels = switches_per_level(m, n)
        assert levels[-1] * m == 2 * q**n or n == 1  # root down-capacity = N
