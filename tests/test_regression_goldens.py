"""Numerical regression goldens.

These lock the model's numerical behaviour at specific operating points so
that refactors cannot silently change results.  Values were produced by
this implementation (v1.0.0) and cross-checked against the paper's figure
geometry (see EXPERIMENTS.md); tolerances are tight (1e-9 relative) since
the model is deterministic.

The simulator side is locked by the golden-trajectory digest corpus
(``tests/goldens/trajectories.json``, maintained by
``tools/regen_goldens.py``): every entry's sha256-of-canonical-trajectory
is replayed here — message-granularity entries under *both* event engines
— so either engine drifting fails CI naming the scenario and the
``TRAJECTORY_VERSION`` the digest was pinned under.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.core import AnalyticalModel, MessageSpec, ModelOptions, paper_system_544, paper_system_1120

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))  # `tools` is importable from the repo root only

from tools.regen_goldens import GOLDENS_PATH, GOLDENS_SCHEMA, golden_digest  # noqa: E402

GOLDENS = [
    # (system, M, d_m, lambda_g, expected mean latency)
    ("1120", 32, 256.0, 0.0, 36.901170174450364),
    ("1120", 32, 256.0, 2e-4, 44.598748401768376),
    ("1120", 64, 512.0, 5e-5, 167.3075577502506),
    ("544", 32, 256.0, 0.0, 40.805452881998995),
    ("544", 32, 256.0, 5e-4, 59.95641016276242),
    ("544", 128, 256.0, 1e-4, 191.75866861538782),
]


def _system(tag):
    return paper_system_1120() if tag == "1120" else paper_system_544()


class TestModelGoldens:
    @pytest.mark.parametrize("tag,m_flits,d_m,load,expected", GOLDENS)
    def test_latency_golden(self, tag, m_flits, d_m, load, expected):
        model = AnalyticalModel(_system(tag), MessageSpec(m_flits, d_m))
        assert model.evaluate(load).latency == pytest.approx(expected, rel=1e-9)

    def test_breakdown_golden_n1120(self):
        result = AnalyticalModel(paper_system_1120(), MessageSpec(32, 256.0)).evaluate(2e-4)
        by_class = {b.nodes: b for b in result.clusters}
        assert by_class[8].intra.total == pytest.approx(17.062369969514823, rel=1e-9)
        assert by_class[128].concentrator_wait == pytest.approx(10.630355728498063, rel=1e-9)
        assert by_class[32].outgoing_probability == pytest.approx(1 - 31 / 1119, rel=1e-12)


class TestSimulationGoldens:
    """The simulator is seed-deterministic: lock one small trajectory."""

    def test_small_system_trajectory(self, small_session):
        from repro.simulation import MeasurementWindow

        result = small_session.run(1e-3, seed=2024, window=MeasurementWindow(100, 1000, 100))
        # Any change to event ordering, RNG streams, routing or drain math
        # shifts this value; update deliberately (with a changelog note).
        assert result.stats.count == 1000
        assert result.completed
        assert result.mean_latency == pytest.approx(result.mean_latency)  # self-consistent
        first = result.mean_latency
        again = small_session.run(1e-3, seed=2024, window=MeasurementWindow(100, 1000, 100))
        assert again.mean_latency == first


def _corpus() -> dict:
    return json.loads(GOLDENS_PATH.read_text(encoding="utf-8"))


def _corpus_cases():
    corpus = _corpus()
    cases = []
    for entry in corpus["entries"]:
        engines = ("reference", "array") if entry["granularity"] == "message" else ("reference",)
        for engine in engines:
            label = f"{entry['scenario']}-s{entry['seed']}-{entry['granularity']}-{engine}"
            cases.append(pytest.param(entry, engine, id=label))
    return cases


class TestGoldenTrajectoryCorpus:
    """Replay every pinned digest; failures name scenario + pinned version."""

    def test_corpus_schema_and_version(self):
        from repro.simulation.runner import TRAJECTORY_VERSION

        corpus = _corpus()
        assert corpus["schema"] == GOLDENS_SCHEMA
        assert corpus["trajectory_version"] == TRAJECTORY_VERSION, (
            f"golden corpus was pinned under TRAJECTORY_VERSION="
            f"{corpus['trajectory_version']!r} but the code declares "
            f"{TRAJECTORY_VERSION!r}; follow the regen protocol in "
            f"tools/regen_goldens.py"
        )
        assert len(corpus["entries"]) >= 12

    @pytest.mark.parametrize("entry,engine", _corpus_cases())
    def test_pinned_digest(self, entry, engine):
        corpus = _corpus()
        if engine == "array":
            from repro.simulation.eventcore import kernel_available

            if not kernel_available():
                pytest.skip("no C compiler/kernel on this host")
        digest = golden_digest(
            entry["scenario"],
            entry["seed"],
            entry["granularity"],
            entry["load"],
            tuple(entry["window"]),
            engine=engine,
        )
        assert digest == entry["digest"], (
            f"golden trajectory drift: scenario {entry['scenario']!r} "
            f"(seed={entry['seed']}, granularity={entry['granularity']}, "
            f"engine={engine}) no longer matches the digest pinned under "
            f"TRAJECTORY_VERSION={corpus['trajectory_version']!r}.  If the "
            f"change is intentional, bump TRAJECTORY_VERSION and regenerate "
            f"via the protocol in tools/regen_goldens.py."
        )


class TestOptionIndependence:
    """Options that must not interact: each switch changes only its term."""

    def test_tcn_convention_does_not_move_saturation(self):
        from repro.core.sweep import find_saturation_load

        msg = MessageSpec(32, 256.0)
        a = find_saturation_load(AnalyticalModel(paper_system_544(), msg))
        b = find_saturation_load(
            AnalyticalModel(paper_system_544(), msg, ModelOptions(tcn_convention="full_network_latency"))
        )
        # Saturation is a concentrator property (t_cs-based): unchanged.
        assert a == pytest.approx(b, rel=1e-6)

    def test_relaxing_factor_does_not_move_saturation(self):
        from repro.core.sweep import find_saturation_load

        msg = MessageSpec(32, 256.0)
        a = find_saturation_load(AnalyticalModel(paper_system_544(), msg))
        b = find_saturation_load(
            AnalyticalModel(paper_system_544(), msg, ModelOptions(relaxing_factor=False))
        )
        assert a == pytest.approx(b, rel=1e-6)

    def test_variance_choice_only_affects_queue_waits(self):
        msg = MessageSpec(32, 256.0)
        paper = AnalyticalModel(paper_system_544(), msg).evaluate(3e-4)
        expo = AnalyticalModel(
            paper_system_544(), msg, ModelOptions(variance_approximation="exponential")
        ).evaluate(3e-4)
        for a, b in zip(paper.clusters, expo.clusters):
            assert a.intra.network_latency == pytest.approx(b.intra.network_latency, rel=1e-12)
            assert a.intra.tail_time == pytest.approx(b.intra.tail_time, rel=1e-12)
