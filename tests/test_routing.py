"""Up*/Down* routing tests (topology.routing vs paper §2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.topology import (
    ChannelKind,
    MPortNTree,
    ascend_to_root,
    descend_from_root,
    nca_level,
    route,
    verify_route,
)
from repro.topology.routing import home_root

trees = st.tuples(st.sampled_from([4, 6, 8]), st.integers(1, 3))


@st.composite
def tree_and_pair(draw):
    m, n = draw(trees)
    tree = MPortNTree(m, n)
    i = draw(st.integers(0, tree.num_nodes - 1))
    j = draw(st.integers(0, tree.num_nodes - 2))
    if j >= i:
        j += 1
    return tree, tree.node(i), tree.node(j)


class TestNcaLevel:
    @given(tree_and_pair())
    def test_symmetric(self, tnp):
        tree, a, b = tnp
        assert nca_level(tree, a, b) == nca_level(tree, b, a)

    @given(tree_and_pair())
    def test_bounds(self, tnp):
        tree, a, b = tnp
        assert 1 <= nca_level(tree, a, b) <= tree.tree_depth

    def test_same_leaf_switch_is_level_one(self):
        tree = MPortNTree(4, 3)
        assert nca_level(tree, tree.node(0), tree.node(1)) == 1

    def test_different_top_groups_need_root(self):
        tree = MPortNTree(4, 2)
        a, b = tree.node(0), tree.node(tree.num_nodes - 1)
        assert a.top_digit != b.top_digit
        assert nca_level(tree, a, b) == 2

    def test_identical_nodes_rejected(self):
        tree = MPortNTree(4, 2)
        with pytest.raises(ValueError):
            nca_level(tree, tree.node(0), tree.node(0))


class TestRoute:
    @given(tree_and_pair())
    def test_route_is_physical_and_updown(self, tnp):
        tree, a, b = tnp
        verify_route(tree, route(tree, a, b))

    @given(tree_and_pair())
    def test_length_is_twice_nca_level(self, tnp):
        tree, a, b = tnp
        assert route(tree, a, b).num_links == 2 * nca_level(tree, a, b)

    @given(tree_and_pair())
    def test_endpoints(self, tnp):
        tree, a, b = tnp
        r = route(tree, a, b)
        assert r.links[0].source == a
        assert r.links[0].kind is ChannelKind.NODE_TO_SWITCH
        assert r.links[-1].target == b
        assert r.links[-1].kind is ChannelKind.SWITCH_TO_NODE

    @given(tree_and_pair())
    def test_deterministic(self, tnp):
        tree, a, b = tnp
        assert route(tree, a, b) == route(tree, a, b)

    def test_all_pairs_small_tree(self):
        tree = MPortNTree(4, 2)
        for i in range(tree.num_nodes):
            for j in range(tree.num_nodes):
                if i == j:
                    continue
                verify_route(tree, route(tree, tree.node(i), tree.node(j)))


class TestRootLegs:
    @given(trees, st.data())
    def test_ascend_reaches_requested_root(self, params, data):
        m, n = params
        tree = MPortNTree(m, n)
        node = tree.node(data.draw(st.integers(0, tree.num_nodes - 1)))
        root = data.draw(st.sampled_from(list(tree.root_switches)))
        leg = ascend_to_root(tree, node, root)
        assert leg.num_links == n
        assert leg.links[-1].target == root
        verify_route(tree, leg)

    @given(trees, st.data())
    def test_descend_reaches_destination(self, params, data):
        m, n = params
        tree = MPortNTree(m, n)
        node = tree.node(data.draw(st.integers(0, tree.num_nodes - 1)))
        root = data.draw(st.sampled_from(list(tree.root_switches)))
        leg = descend_from_root(tree, root, node)
        assert leg.num_links == n
        assert leg.links[-1].target == node
        verify_route(tree, leg)

    @given(trees)
    def test_home_root_spreads_uniformly(self, params):
        m, n = params
        tree = MPortNTree(m, n)
        from collections import Counter

        counts = Counter(home_root(tree, node) for node in tree.nodes())
        assert len(counts) == len(tree.root_switches)
        assert len(set(counts.values())) == 1  # perfectly balanced

    def test_non_root_target_rejected(self):
        tree = MPortNTree(4, 2)
        leaf = tree.leaf_switch(tree.node(0))
        with pytest.raises(ValueError):
            ascend_to_root(tree, tree.node(0), leaf)
