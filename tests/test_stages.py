"""Backward stage-recursion tests (core.stages vs paper Eqs. 13-14)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import StagePipeline, solve_pipeline


def pipeline(times, rates):
    return StagePipeline(np.asarray(times, dtype=float), np.asarray(rates, dtype=float))


class TestBaseCases:
    def test_single_stage_is_pure_transfer(self):
        # T_0 = M * t_cn for a one-stage (nearest-neighbour) journey.
        sol = solve_pipeline(pipeline([0.5], [0.1]), 32)
        assert sol.network_latency == pytest.approx(16.0)
        assert sol.stage_waits[0] == pytest.approx(0.5 * 0.1 * 16.0**2)

    def test_zero_rate_collapses_to_transfer_times(self):
        sol = solve_pipeline(pipeline([0.5, 0.5, 0.4], [0.0, 0.0, 0.0]), 10)
        assert sol.network_latency == pytest.approx(5.0)  # M * t of stage 0 only
        assert sol.total_wait == 0.0

    def test_hand_computed_two_stage(self):
        # K=2, M=2, t=[1, 1], eta=[e, e]:
        # T_1 = 2, W_1 = 0.5 e 4 = 2e; T_0 = 2 + 2e.
        e = 0.25
        sol = solve_pipeline(pipeline([1.0, 1.0], [e, e]), 2)
        assert sol.stage_service_times[1] == pytest.approx(2.0)
        assert sol.stage_waits[1] == pytest.approx(2 * e)
        assert sol.network_latency == pytest.approx(2.0 + 2 * e)

    def test_hand_computed_three_stage(self):
        # Backward: T_2 = M t2; W_2 = .5 e T_2^2; T_1 = M t1 + W_2;
        # W_1 = .5 e T_1^2; T_0 = M t0 + W_1 + W_2.
        m, t, e = 4, [0.5, 0.6, 0.7], 0.05
        t2 = m * t[2]
        w2 = 0.5 * e * t2 * t2
        t1 = m * t[1] + w2
        w1 = 0.5 * e * t1 * t1
        t0 = m * t[0] + w1 + w2
        sol = solve_pipeline(pipeline(t, [e, e, e]), m)
        assert sol.network_latency == pytest.approx(t0)


class TestProperties:
    @given(
        st.lists(st.floats(0.1, 2.0), min_size=1, max_size=9),
        st.floats(0.0, 0.05),
        st.integers(1, 64),
    )
    def test_latency_at_least_stage0_transfer(self, times, eta, m):
        sol = solve_pipeline(pipeline(times, [eta] * len(times)), m)
        assert sol.network_latency >= m * times[0] - 1e-12

    @given(st.lists(st.floats(0.1, 2.0), min_size=2, max_size=8), st.integers(1, 32))
    def test_monotone_in_channel_rate(self, times, m):
        low = solve_pipeline(pipeline(times, [0.001] * len(times)), m)
        high = solve_pipeline(pipeline(times, [0.01] * len(times)), m)
        assert high.network_latency > low.network_latency

    @given(st.lists(st.floats(0.1, 2.0), min_size=1, max_size=8), st.floats(0, 0.02))
    def test_monotone_in_message_length(self, times, eta):
        rates = [eta] * len(times)
        short = solve_pipeline(pipeline(times, rates), 8)
        long = solve_pipeline(pipeline(times, rates), 16)
        assert long.network_latency > short.network_latency

    def test_extreme_rates_saturate_to_inf_not_overflow(self):
        sol = solve_pipeline(pipeline([1.0] * 12, [1e30] * 12), 64)
        assert sol.network_latency == float("inf")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StagePipeline(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            StagePipeline(np.array([]), np.array([]))
