"""Tests for configuration objects (core.parameters), incl. paper Table 1."""

import pytest

from repro.core import (
    NET1,
    NET2,
    ClusterSpec,
    MessageSpec,
    ModelOptions,
    NetworkCharacteristics,
    SystemConfig,
    paper_message,
    paper_system_544,
    paper_system_1120,
)
from repro.core.parameters import nodes_in_tree


class TestNetworkCharacteristics:
    def test_beta_is_inverse_bandwidth(self):
        assert NET1.beta == pytest.approx(1 / 500)
        assert NET2.beta == pytest.approx(1 / 250)

    def test_paper_table2_values(self):
        assert (NET1.bandwidth, NET1.network_latency, NET1.switch_latency) == (500.0, 0.01, 0.02)
        assert (NET2.bandwidth, NET2.network_latency, NET2.switch_latency) == (250.0, 0.05, 0.01)

    def test_scaled_bandwidth(self):
        scaled = NET1.scaled_bandwidth(1.2)
        assert scaled.bandwidth == pytest.approx(600.0)
        assert scaled.network_latency == NET1.network_latency

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
    def test_rejects_bad_bandwidth(self, bad):
        with pytest.raises(ValueError):
            NetworkCharacteristics(bandwidth=bad, network_latency=0.1, switch_latency=0.1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            NetworkCharacteristics(bandwidth=1.0, network_latency=-0.1, switch_latency=0.1)


class TestClusterSpec:
    def test_nodes_formula(self):
        assert ClusterSpec(tree_depth=3).nodes(8) == 128
        assert ClusterSpec(tree_depth=1).nodes(4) == 4

    def test_class_key_groups_identical_specs(self):
        a = ClusterSpec(tree_depth=2, name="x")
        b = ClusterSpec(tree_depth=2, name="y")
        assert a.class_key() == b.class_key()

    def test_class_key_distinguishes_networks(self):
        a = ClusterSpec(tree_depth=2, icn1=NET1)
        b = ClusterSpec(tree_depth=2, icn1=NET2)
        assert a.class_key() != b.class_key()

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            ClusterSpec(tree_depth=0)


class TestMessageSpec:
    def test_total_bytes(self):
        assert MessageSpec(32, 256.0).total_bytes == pytest.approx(8192.0)

    def test_paper_message_defaults(self):
        msg = paper_message()
        assert (msg.length_flits, msg.flit_bytes) == (32, 256.0)

    def test_rejects_zero_flits(self):
        with pytest.raises(ValueError):
            MessageSpec(0, 256.0)


class TestModelOptions:
    def test_defaults_are_paper(self):
        opts = ModelOptions()
        assert opts.tcn_convention == "half_network_latency"
        assert opts.source_queue_rate == "paper"
        assert opts.relaxing_factor is True
        assert opts.concentrator_rate == "pair_mean"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("tcn_convention", "bogus"),
            ("source_queue_rate", "bogus"),
            ("variance_approximation", "bogus"),
            ("inter_average", "bogus"),
            ("concentrator_rate", "bogus"),
        ],
    )
    def test_rejects_unknown_values(self, field, value):
        with pytest.raises(ValueError):
            ModelOptions(**{field: value})


class TestSystemConfig:
    def test_paper_1120_shape(self):
        cfg = paper_system_1120()
        assert cfg.total_nodes == 1120
        assert cfg.num_clusters == 32
        assert cfg.switch_ports == 8
        assert cfg.icn2_tree_depth == 2
        assert cfg.cluster_sizes[:12] == (8,) * 12
        assert cfg.cluster_sizes[12:28] == (32,) * 16
        assert cfg.cluster_sizes[28:] == (128,) * 4

    def test_paper_544_shape(self):
        cfg = paper_system_544()
        assert cfg.total_nodes == 544
        assert cfg.num_clusters == 16
        assert cfg.switch_ports == 4
        assert cfg.icn2_tree_depth == 3
        assert cfg.cluster_sizes == (16,) * 8 + (32,) * 3 + (64,) * 5

    def test_outgoing_probability_eq2(self):
        cfg = paper_system_1120()
        # U_i = 1 - (N_i - 1)/(N - 1)
        assert cfg.outgoing_probability(0) == pytest.approx(1 - 7 / 1119)
        assert cfg.outgoing_probability(31) == pytest.approx(1 - 127 / 1119)

    def test_cluster_classes_grouping(self):
        classes = paper_system_1120().cluster_classes()
        assert [c.count for c in classes] == [12, 16, 4]
        assert [c.nodes for c in classes] == [8, 32, 128]
        assert sum(c.count * c.nodes for c in classes) == 1120

    def test_classes_keep_distinct_networks_apart(self):
        cfg = SystemConfig(
            switch_ports=4,
            clusters=(
                ClusterSpec(tree_depth=1, ecn1=NET2),
                ClusterSpec(tree_depth=1, ecn1=NET1),
                ClusterSpec(tree_depth=1, ecn1=NET2),
                ClusterSpec(tree_depth=1, ecn1=NET2),
            ),
        )
        assert [c.count for c in cfg.cluster_classes()] == [3, 1]

    def test_rejects_invalid_cluster_count(self):
        with pytest.raises(ValueError, match="number of clusters"):
            SystemConfig(switch_ports=4, clusters=(ClusterSpec(1), ClusterSpec(1), ClusterSpec(1)))

    def test_rejects_odd_ports(self):
        with pytest.raises(ValueError):
            SystemConfig(switch_ports=5, clusters=(ClusterSpec(1),))

    def test_single_cluster_allowed(self):
        cfg = SystemConfig(switch_ports=4, clusters=(ClusterSpec(2),))
        assert cfg.num_clusters == 1
        assert cfg.outgoing_probability(0) == 0.0

    def test_with_icn2_replaces_only_icn2(self):
        cfg = paper_system_544()
        fast = cfg.with_icn2(NET1.scaled_bandwidth(1.2))
        assert fast.icn2.bandwidth == pytest.approx(600.0)
        assert fast.clusters == cfg.clusters

    def test_nodes_in_tree_helper(self):
        assert nodes_in_tree(8, 3) == 128
        with pytest.raises(ValueError):
            nodes_in_tree(7, 3)
