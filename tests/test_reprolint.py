"""Tests for the ``tools.reprolint`` invariant linter.

Covers every rule code with good/bad fixture snippets, the
fingerprint-changed-without-bump path (the acceptance scenario: mutate a
closed-form expression in ``core/batch.py``, no ``ENGINE_VERSION`` bump,
gate goes red), baseline suppression, and the CLI's exit-code
conventions.  A final check locks the shipped tree itself at zero
diagnostics — the state CI enforces on every PR.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))  # `tools` is importable from the repo root only

from tools.reprolint import RULES, Diagnostic  # noqa: E402
from tools.reprolint.__main__ import lint_paths, main  # noqa: E402
from tools.reprolint.baseline import (  # noqa: E402
    filter_baseline,
    load_baseline,
    write_baseline,
)
from tools.reprolint.fingerprint import (  # noqa: E402
    SURFACES,
    check_fingerprints,
    fingerprint_source,
    write_manifest,
)
from tools.reprolint.rules import lint_source  # noqa: E402


def codes(source: str, rel: str) -> list[str]:
    return [d.code for d in lint_source(source, rel)]


# ---------------------------------------------------------------------------
# RD — determinism rules
# ---------------------------------------------------------------------------


class TestDeterminismRules:
    def test_rd101_unseeded_default_rng(self):
        bad = "import numpy as np\nrng = np.random.default_rng()\n"
        assert "RD101" in codes(bad, "src/repro/analysis/foo.py")

    def test_rd101_applies_even_inside_rng_module(self):
        bad = "import numpy as np\nrng = np.random.default_rng()\n"
        assert "RD101" in codes(bad, "src/repro/simulation/rng.py")

    def test_rd101_seeded_is_clean(self):
        good = "import numpy as np\nrng = np.random.default_rng(1234)\n"
        assert "RD101" not in codes(good, "src/repro/simulation/rng.py")

    def test_rd101_sees_through_aliases(self):
        bad = "from numpy.random import default_rng\nrng = default_rng()\n"
        assert "RD101" in codes(bad, "src/repro/analysis/foo.py")

    def test_rd102_stdlib_random_import(self):
        assert "RD102" in codes("import random\n", "src/repro/analysis/foo.py")
        assert "RD102" in codes(
            "from random import shuffle\n", "src/repro/analysis/foo.py"
        )

    def test_rd102_legacy_numpy_global_state(self):
        bad = "import numpy as np\nnp.random.seed(0)\nx = np.random.random(3)\n"
        found = codes(bad, "src/repro/workloads/foo.py")
        assert found.count("RD102") == 2

    def test_rd102_generator_methods_are_clean(self):
        # rng.random() on a Generator instance is the blessed pattern.
        good = "def draw(rng):\n    return rng.random(3)\n"
        assert codes(good, "src/repro/workloads/foo.py") == []

    def test_rd103_wall_clock_in_hot_path(self):
        bad = "import time\nstamp = time.time()\n"
        assert "RD103" in codes(bad, "src/repro/core/foo.py")
        assert "RD103" in codes(bad, "src/repro/simulation/foo.py")

    def test_rd103_perf_counter_is_instrumentation_not_clock(self):
        good = "import time\nt0 = time.perf_counter()\n"
        assert codes(good, "src/repro/simulation/foo.py") == []

    def test_rd103_aliased_import_still_caught(self):
        bad = "import time as _time\nstamp = _time.time()\n"
        assert "RD103" in codes(bad, "src/repro/simulation/foo.py")

    def test_rd103_outside_hot_path_is_out_of_scope(self):
        ok = "import time\nstamp = time.time()\n"
        assert codes(ok, "src/repro/io/foo.py") == []

    def test_rd103_datetime_now(self):
        bad = "import datetime\nstamp = datetime.datetime.now()\n"
        assert "RD103" in codes(bad, "src/repro/core/foo.py")

    def test_rd104_rng_construction_outside_rng_module(self):
        bad = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert "RD104" in codes(bad, "src/repro/core/foo.py")
        bad_seq = "import numpy as np\nss = np.random.SeedSequence(7)\n"
        assert "RD104" in codes(bad_seq, "src/repro/simulation/foo.py")

    def test_rd104_rng_module_is_exempt(self):
        good = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert codes(good, "src/repro/simulation/rng.py") == []


# ---------------------------------------------------------------------------
# RS — serialization rules
# ---------------------------------------------------------------------------


class TestSerializationRules:
    def test_rs201_to_dict_without_from_dict(self):
        bad = (
            "class Spec:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
        )
        diags = lint_source(bad, "src/repro/scenarios/foo.py")
        assert [d.code for d in diags] == ["RS201"]
        assert diags[0].symbol == "Spec"

    def test_rs201_round_trippable_class_is_clean(self):
        good = (
            "from repro._util import reject_unknown_keys\n"
            "class Spec:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
            "    @classmethod\n"
            "    def from_dict(cls, data):\n"
            "        reject_unknown_keys(data, (), 'spec')\n"
            "        return cls()\n"
        )
        assert codes(good, "src/repro/scenarios/foo.py") == []

    def test_rs202_from_dict_without_reject_unknown_keys(self):
        bad = (
            "class Spec:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
            "    @classmethod\n"
            "    def from_dict(cls, data):\n"
            "        return cls(**data)\n"
        )
        assert "RS202" in codes(bad, "src/repro/scenarios/foo.py")

    def test_rs202_accepts_the_underscore_alias(self):
        # core/parameters.py imports it as _reject_unknown_keys.
        good = (
            "from repro._util import reject_unknown_keys as _reject_unknown_keys\n"
            "class Spec:\n"
            "    def to_dict(self):\n"
            "        return {}\n"
            "    @classmethod\n"
            "    def from_dict(cls, data):\n"
            "        _reject_unknown_keys(data, (), 'spec')\n"
            "        return cls()\n"
        )
        assert codes(good, "src/repro/core/foo.py") == []

    def test_rs203_schema_literal_outside_registry(self):
        bad = 'MY_SCHEMA = "repro.widget/1"\n'
        assert "RS203" in codes(bad, "src/repro/experiments/foo.py")

    def test_rs203_registry_module_may_declare(self):
        good = 'MY_SCHEMA = "repro.widget/1"\n'
        assert codes(good, "src/repro/io/schemas.py") == []

    def test_rs203_docstrings_do_not_count(self):
        good = '"""Results use the ``repro.widget/1`` schema."""\n\n' \
               'def f():\n    "reads repro.widget/1 documents"\n    return 1\n'
        assert codes(good, "src/repro/experiments/foo.py") == []


# ---------------------------------------------------------------------------
# RP — parallel-safety rules
# ---------------------------------------------------------------------------


class TestParallelSafetyRules:
    def test_rp301_lambda_into_map_jobs(self):
        bad = (
            "from repro.simulation.parallel import map_jobs\n"
            "rows = map_jobs(lambda p: p, [1, 2], jobs=2)\n"
        )
        assert "RP301" in codes(bad, "src/repro/experiments/foo.py")

    def test_rp301_nested_function_into_map_jobs(self):
        bad = (
            "from repro.simulation.parallel import map_jobs\n"
            "def run(payloads):\n"
            "    def worker(p):\n"
            "        return p\n"
            "    return map_jobs(worker, payloads)\n"
        )
        assert "RP301" in codes(bad, "src/repro/experiments/foo.py")

    def test_rp301_module_level_function_is_clean(self):
        good = (
            "from repro.simulation.parallel import map_jobs\n"
            "def worker(p):\n"
            "    return p\n"
            "def run(payloads):\n"
            "    return map_jobs(worker, payloads)\n"
        )
        assert codes(good, "src/repro/experiments/foo.py") == []

    def test_rp302_callable_field_on_work_item(self):
        bad = (
            "from dataclasses import dataclass\n"
            "from typing import Callable\n"
            "@dataclass(frozen=True)\n"
            "class SimWorkItem:\n"
            "    fn: Callable\n"
        )
        assert "RP302" in codes(bad, "src/repro/simulation/foo.py")

    def test_rp302_generator_field_on_work_item(self):
        bad = (
            "import numpy as np\n"
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class SimWorkItem:\n"
            "    rng: np.random.Generator\n"
        )
        assert "RP302" in codes(bad, "src/repro/simulation/foo.py")

    def test_rp302_spec_level_fields_are_clean(self):
        good = (
            "from dataclasses import dataclass\n"
            "from repro.core.parameters import MessageSpec, SystemConfig\n"
            "@dataclass(frozen=True)\n"
            "class SimWorkItem:\n"
            "    system: SystemConfig\n"
            "    message: MessageSpec\n"
            "    seed: int\n"
            "    rate: float\n"
            "    grid: 'tuple[float, ...]'\n"
            "    note: 'str | None' = None\n"
        )
        assert codes(good, "src/repro/simulation/foo.py") == []

    def test_rp302_only_applies_to_work_item_dataclasses(self):
        ok = (
            "from dataclasses import dataclass\n"
            "from typing import Callable\n"
            "@dataclass\n"
            "class Plan:\n"
            "    fn: Callable\n"
        )
        assert codes(ok, "src/repro/simulation/foo.py") == []

    def test_rp303_pool_import_outside_exec(self):
        bad = "from concurrent.futures import ProcessPoolExecutor\n"
        assert "RP303" in codes(bad, "src/repro/simulation/parallel.py")

    def test_rp303_pool_import_alias_outside_exec(self):
        bad = "from concurrent.futures import ProcessPoolExecutor as PPE\n"
        assert "RP303" in codes(bad, "src/repro/experiments/foo.py")

    def test_rp303_module_attribute_call_outside_exec(self):
        bad = (
            "import concurrent.futures\n"
            "pool = concurrent.futures.ProcessPoolExecutor(max_workers=2)\n"
        )
        assert "RP303" in codes(bad, "src/repro/experiments/foo.py")

    def test_rp303_exec_runtime_is_exempt(self):
        ok = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "pool = ProcessPoolExecutor(max_workers=2)\n"
        )
        assert codes(ok, "src/repro/exec/supervisor.py") == []

    def test_rp303_other_futures_imports_are_clean(self):
        ok = "from concurrent.futures import FIRST_COMPLETED, wait\n"
        assert codes(ok, "src/repro/experiments/foo.py") == []


# ---------------------------------------------------------------------------
# RF — fingerprints
# ---------------------------------------------------------------------------


def copy_surface_tree(tmp_path: Path) -> Path:
    """A scratch repo root carrying exactly the fingerprinted files."""
    root = tmp_path / "repo"
    for surface in SURFACES.values():
        for rel in surface.files:
            dst = root / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(ROOT / rel, dst)
    return root


class TestFingerprints:
    def test_normalization_ignores_docstrings_and_comments(self):
        a = 'def f(x):\n    """Docs."""\n    return x + 1  # comment\n'
        b = "def f(x):\n    return x + 1\n"
        assert fingerprint_source(a) == fingerprint_source(b)

    def test_normalization_sees_numeric_changes(self):
        a = "def f(x):\n    return 0.5 * x\n"
        b = "def f(x):\n    return 0.6 * x\n"
        assert fingerprint_source(a) != fingerprint_source(b)

    def test_clean_tree_matches_manifest(self, tmp_path):
        root = copy_surface_tree(tmp_path)
        manifest = tmp_path / "fingerprints.json"
        write_manifest(root, manifest)
        assert check_fingerprints(root, manifest) == []

    def test_docstring_edit_does_not_trip(self, tmp_path):
        root = copy_surface_tree(tmp_path)
        manifest = tmp_path / "fingerprints.json"
        write_manifest(root, manifest)
        batch = root / "src/repro/core/batch.py"
        batch.write_text(
            batch.read_text().replace(
                "Batched load-grid evaluation engine",
                "Batched load-grid evaluation engine (edited docs)",
            )
        )
        assert check_fingerprints(root, manifest) == []

    def test_mutated_closed_form_without_bump_is_rf001(self, tmp_path):
        root = copy_surface_tree(tmp_path)
        manifest = tmp_path / "fingerprints.json"
        write_manifest(root, manifest)
        batch = root / "src/repro/core/batch.py"
        text = batch.read_text()
        assert "lambda_i2 = 0.5 * lambda_e1" in text
        batch.write_text(text.replace("lambda_i2 = 0.5 * lambda_e1", "lambda_i2 = 0.51 * lambda_e1"))
        diags = check_fingerprints(root, manifest)
        assert [d.code for d in diags] == ["RF001"]
        assert diags[0].path == "src/repro/core/batch.py"
        assert "ENGINE_VERSION" in diags[0].message

    def test_mutated_simulator_without_bump_is_rf002(self, tmp_path):
        root = copy_surface_tree(tmp_path)
        manifest = tmp_path / "fingerprints.json"
        write_manifest(root, manifest)
        wormhole = root / "src/repro/simulation/wormhole.py"
        wormhole.write_text(wormhole.read_text() + "\n_EXTRA_STATE = 1\n")
        diags = check_fingerprints(root, manifest)
        assert [d.code for d in diags] == ["RF002"]
        assert "TRAJECTORY_VERSION" in diags[0].message

    def test_bump_without_regen_is_rf003(self, tmp_path):
        root = copy_surface_tree(tmp_path)
        manifest = tmp_path / "fingerprints.json"
        write_manifest(root, manifest)
        batch = root / "src/repro/core/batch.py"
        batch.write_text(
            batch.read_text().replace('ENGINE_VERSION = "batch/2"', 'ENGINE_VERSION = "batch/3"')
        )
        diags = check_fingerprints(root, manifest)
        assert [d.code for d in diags] == ["RF003"]
        assert "batch/3" in diags[0].message

    def test_bump_plus_regen_is_clean(self, tmp_path):
        root = copy_surface_tree(tmp_path)
        manifest = tmp_path / "fingerprints.json"
        batch = root / "src/repro/core/batch.py"
        batch.write_text(
            batch.read_text()
            .replace("lambda_i2 = 0.5 * lambda_e1", "lambda_i2 = 0.51 * lambda_e1")
            .replace('ENGINE_VERSION = "batch/2"', 'ENGINE_VERSION = "batch/3"')
        )
        write_manifest(root, manifest)
        assert check_fingerprints(root, manifest) == []

    def test_missing_manifest_is_rf003(self, tmp_path):
        root = copy_surface_tree(tmp_path)
        diags = check_fingerprints(root, tmp_path / "nope.json")
        assert [d.code for d in diags] == ["RF003"]


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_baseline_suppresses_by_code_path_symbol(self, tmp_path):
        bad = "import random\n"
        diags = lint_source(bad, "src/repro/analysis/foo.py")
        assert [d.code for d in diags] == ["RD102"]
        path = write_baseline(diags, tmp_path / "baseline.json")
        kept, suppressed = filter_baseline(diags, load_baseline(path))
        assert kept == [] and suppressed == 1

    def test_baseline_keys_are_line_independent(self, tmp_path):
        diags = lint_source("import random\n", "src/repro/analysis/foo.py")
        path = write_baseline(diags, tmp_path / "baseline.json")
        moved = lint_source("x = 1\n\nimport random\n", "src/repro/analysis/foo.py")
        kept, suppressed = filter_baseline(moved, load_baseline(path))
        assert kept == [] and suppressed == 1

    def test_baseline_does_not_hide_new_findings(self, tmp_path):
        path = write_baseline(
            lint_source("import random\n", "src/repro/analysis/foo.py"),
            tmp_path / "baseline.json",
        )
        new = lint_source(
            "import random\nimport numpy as np\nr = np.random.default_rng()\n",
            "src/repro/analysis/foo.py",
        )
        kept, suppressed = filter_baseline(new, load_baseline(path))
        assert [d.code for d in kept] == ["RD101"] and suppressed == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_foreign_json_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValueError, match="not a reprolint baseline"):
            load_baseline(path)

    def test_main_exits_zero_with_full_baseline(self, tmp_path, capsys):
        src = tmp_path / "src" / "repro" / "analysis"
        src.mkdir(parents=True)
        (src / "foo.py").write_text("import random\n")
        baseline = tmp_path / "baseline.json"
        args = [
            "src/repro", "--root", str(tmp_path),
            "--baseline", str(baseline), "--no-fingerprints",
        ]
        assert main(args) == 1  # red without the baseline...
        assert main([*args, "--update-baseline"]) == 0
        assert main(args) == 0  # ...green once recorded
        assert "suppressed by baseline" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# CLI conventions + the shipped tree
# ---------------------------------------------------------------------------


def run_cli(*args: str, cwd: Path = ROOT) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "tools.reprolint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestCLI:
    def test_shipped_tree_is_clean(self):
        proc = run_cli("src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "reprolint OK" in proc.stderr

    def test_list_rules_covers_every_code(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for code in RULES:
            assert code in proc.stdout

    def test_unknown_path_is_usage_error(self):
        assert run_cli("src/definitely_not_a_package").returncode == 2

    def test_unknown_selector_is_usage_error(self):
        assert run_cli("src/repro", "--select", "XX999").returncode == 2

    def test_diagnostic_format_and_exit_one(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "foo.py").write_text("import time\nstamp = time.time()\n")
        proc = run_cli("src/repro", "--root", str(tmp_path), "--no-fingerprints")
        assert proc.returncode == 1
        assert "src/repro/core/foo.py:2:8: RD103" in proc.stdout
        assert "problem(s)" in proc.stderr

    def test_select_filters_to_one_family(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "foo.py").write_text(
            "import time\nstamp = time.time()\n"
            "class Spec:\n    def to_dict(self):\n        return {}\n"
        )
        proc = run_cli(
            "src/repro", "--root", str(tmp_path), "--no-fingerprints",
            "--select", "RS",
        )
        assert proc.returncode == 1
        assert "RS201" in proc.stdout and "RD103" not in proc.stdout

    def test_acceptance_mutating_batch_without_bump_fails_gate(self, tmp_path):
        """The ISSUE's acceptance scenario, end to end through the CLI."""
        scratch = tmp_path / "repo"
        shutil.copytree(ROOT / "src", scratch / "src")
        shutil.copytree(ROOT / "tools", scratch / "tools")
        batch = scratch / "src/repro/core/batch.py"
        text = batch.read_text()
        assert "lambda_i2 = 0.5 * lambda_e1" in text
        batch.write_text(
            text.replace("lambda_i2 = 0.5 * lambda_e1", "lambda_i2 = 0.5000001 * lambda_e1")
        )
        proc = run_cli("src/repro", cwd=scratch)
        assert proc.returncode == 1
        assert "RF001" in proc.stdout
        assert "src/repro/core/batch.py" in proc.stdout


class TestShippedTree:
    def test_lint_paths_reports_nothing(self):
        assert lint_paths([ROOT / "src" / "repro"], ROOT) == []

    def test_rule_catalogue_is_documented(self):
        doc = (ROOT / "docs" / "static_analysis.md").read_text()
        for code, _description in RULES.items():
            assert code in doc, f"rule {code} missing from docs/static_analysis.md"

    def test_schema_registry_is_single_source(self):
        """Every schema constant the packages export comes from the registry."""
        from repro.io.schemas import declared_schemas

        declared = declared_schemas()
        assert declared == {
            "SCENARIO_SCHEMA": "repro.scenario/1",
            "GRID_SCHEMA": "repro.grid/1",
            "EXPERIMENT_SCHEMA": "repro.experiment/1",
            "EXPLORE_CELL_SCHEMA": "repro.explore-cell/1",
            "CALIBRATION_SCHEMA": "repro.calibration/1",
            "SIM_CURVE_SCHEMA": "repro.sim-curve/1",
            "PERFORMABILITY_SCHEMA": "repro.performability/1",
            "PERFORMABILITY_STATE_SCHEMA": "repro.performability-state/1",
            "ITEM_OUTCOME_SCHEMA": "repro.item-outcome/1",
            "RUN_JOURNAL_SCHEMA": "repro.run-journal/1",
            "FAULTS_SCHEMA": "repro.faults/1",
        }
        import repro.experiments as experiments
        import repro.performability as performability
        import repro.scenarios as scenarios

        assert scenarios.SCENARIO_SCHEMA is declared["SCENARIO_SCHEMA"]
        assert scenarios.GRID_SCHEMA is declared["GRID_SCHEMA"]
        assert experiments.EXPERIMENT_SCHEMA is declared["EXPERIMENT_SCHEMA"]
        assert experiments.CALIBRATION_SCHEMA is declared["CALIBRATION_SCHEMA"]
        assert performability.PERFORMABILITY_SCHEMA is declared["PERFORMABILITY_SCHEMA"]
        assert (
            performability.PERFORMABILITY_STATE_SCHEMA
            is declared["PERFORMABILITY_STATE_SCHEMA"]
        )
        import repro.exec as exec_runtime

        assert exec_runtime.ITEM_OUTCOME_SCHEMA is declared["ITEM_OUTCOME_SCHEMA"]
        assert exec_runtime.RUN_JOURNAL_SCHEMA is declared["RUN_JOURNAL_SCHEMA"]
        assert exec_runtime.FAULTS_SCHEMA is declared["FAULTS_SCHEMA"]

    def test_diagnostic_render_format(self):
        diag = Diagnostic("RD101", "src/x.py", 3, 4, "message", "f")
        assert diag.render() == "src/x.py:3:4: RD101 message"
        assert diag.baseline_key() == "RD101 src/x.py f"
