"""Pareto-frontier and sensitivity tests (analysis.frontier)."""

import pytest

from repro.analysis import (
    axis_sensitivity,
    bandwidth_cost_proxy,
    pareto_frontier,
    pareto_frontier_cells,
    scale_network,
)
from repro.core import paper_system_544


def cell(coords, **metrics):
    return {"coords": coords, "metrics": metrics}


class TestParetoFrontier:
    def test_dominated_points_dropped(self):
        # (cost, perf): B dominates C (cheaper AND better); A and B remain.
        xs = [1.0, 2.0, 3.0]
        ys = [1.0, 5.0, 4.0]
        assert pareto_frontier(xs, ys) == (0, 1)

    def test_sorted_by_x_in_preferred_direction(self):
        xs = [3.0, 1.0, 2.0]
        ys = [9.0, 1.0, 5.0]
        assert pareto_frontier(xs, ys) == (1, 2, 0)

    def test_duplicates_of_a_frontier_point_kept(self):
        xs = [1.0, 1.0, 2.0]
        ys = [4.0, 4.0, 4.0]
        # The two identical points survive; the strictly pricier one dies.
        assert pareto_frontier(xs, ys) == (0, 1)

    def test_equal_x_keeps_only_best_y(self):
        xs = [1.0, 1.0]
        ys = [4.0, 3.0]
        assert pareto_frontier(xs, ys) == (0,)

    def test_direction_flags(self):
        xs = [1.0, 2.0]
        ys = [1.0, 2.0]
        # Maximise both: only (2, 2) is efficient.
        assert pareto_frontier(xs, ys, minimize_x=False) == (1,)
        # Minimise both: only (1, 1) is efficient.
        assert pareto_frontier(xs, ys, maximize_y=False) == (0,)

    def test_single_point(self):
        assert pareto_frontier([5.0], [7.0]) == (0,)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            pareto_frontier([1.0, float("nan")], [1.0, 2.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            pareto_frontier([1.0], [1.0, 2.0])

    def test_cells_wrapper(self):
        cells = [
            cell({"a": 1}, cost_proxy=1.0, saturation_load=1.0),
            cell({"a": 2}, cost_proxy=2.0, saturation_load=5.0),
            cell({"a": 3}, cost_proxy=3.0, saturation_load=4.0),
        ]
        assert pareto_frontier_cells(cells) == (0, 1)

    def test_cells_wrapper_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            pareto_frontier_cells([cell({}, cost_proxy=1.0)], y="nope")


class TestAxisSensitivity:
    def test_ranks_influential_axis_first(self):
        # metric = 10*a + b: axis 'a' moves it 10x harder than 'b'.
        cells = [
            cell({"a": a, "b": b}, m=10.0 * a + b)
            for a in (1.0, 2.0)
            for b in (1.0, 2.0)
        ]
        ranking = axis_sensitivity(cells, metric="m")
        assert [s.path for s in ranking] == ["a", "b"]
        assert ranking[0].spread > ranking[1].spread > 0
        assert ranking[0].groups == ranking[1].groups == 2

    def test_inert_axis_scores_zero(self):
        cells = [
            cell({"a": a, "b": b}, m=float(a))
            for a in (1.0, 2.0)
            for b in (1.0, 2.0)
        ]
        ranking = {s.path: s.spread for s in axis_sensitivity(cells, metric="m")}
        assert ranking["b"] == 0.0
        assert ranking["a"] > 0.0

    def test_nan_cells_excluded(self):
        cells = [
            cell({"a": 1.0}, m=1.0),
            cell({"a": 2.0}, m=float("nan")),
        ]
        (ranking,) = axis_sensitivity(cells, metric="m")
        assert ranking.spread == 0.0  # the surviving group has one value

    def test_single_axis_grid(self):
        cells = [cell({"a": v}, m=v) for v in (1.0, 2.0, 4.0)]
        (ranking,) = axis_sensitivity(cells, metric="m")
        assert ranking.groups == 1
        assert ranking.spread == pytest.approx((4.0 - 1.0) / (7.0 / 3.0))


class TestCostProxy:
    def test_monotone_in_every_role(self):
        base = paper_system_544()
        cost = bandwidth_cost_proxy(base)
        for role in ("icn1", "ecn1", "icn2"):
            assert bandwidth_cost_proxy(scale_network(base, role, 2.0)) > cost

    def test_formula_on_paper_544(self):
        base = paper_system_544()
        # Σ N_i·n_i·bw_icn1 + Σ N_i·bw_ecn1 + C·n_c·bw_icn2, Table 1 row 2:
        # 8 clusters n=3 (16 nodes), 3 clusters n=4 (32), 5 clusters n=5 (64).
        icn1 = 500.0 * (8 * 16 * 3 + 3 * 32 * 4 + 5 * 64 * 5)
        ecn1 = 250.0 * (8 * 16 + 3 * 32 + 5 * 64)
        icn2 = 500.0 * 16 * 3  # C=16 = 2*2**3 -> n_c=3
        assert bandwidth_cost_proxy(base) == pytest.approx(icn1 + ecn1 + icn2)
