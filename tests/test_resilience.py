"""End-to-end resilience tests: studies under injected faults + resume.

Locks the PR's acceptance criteria: with worker crashes and hung items
injected, explore completes via retries bit-identically to the fault-free
run; a run killed mid-flight resumes from its journal evaluating only the
remaining cells; exhausted retries degrade to partial tables with an
``errors`` section and CLI exit code 3; and a clean interrupt exits 130.
"""

import json
import math
import os

import pytest

from repro import cli
from repro.cluster import homogeneous_system
from repro.core import MessageSpec
from repro.exec import FAULTS_ENV, RunPolicy
from repro.experiments import explore_grid
from repro.experiments.calibrate import calibrate_options
from repro.io import ResultCache, to_jsonable
from repro.performability import FailureMode, FailureScenario, performability_analysis
from repro.scenarios import AxisSpec, DesignGrid, ScenarioSpec, get_scenario


def canonical(payload) -> str:
    """Bit-stable text form (NaN-safe) for table-equality assertions."""
    return json.dumps(to_jsonable(payload), sort_keys=True)


def _arm(monkeypatch, *faults):
    monkeypatch.setenv(
        FAULTS_ENV,
        json.dumps({"schema": "repro.faults/1", "faults": list(faults)}),
    )


def small_grid() -> DesignGrid:
    return DesignGrid(
        base=get_scenario("544"),
        axes=(
            AxisSpec("system.icn2.bandwidth", (500.0, 600.0)),
            AxisSpec("message.length_flits", (32, 64)),
        ),
    )


def tiny_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="tiny",
        system=homogeneous_system(switch_ports=4, tree_depth=2, num_clusters=4),
        message=MessageSpec(16, 256.0),
    )


@pytest.fixture(scope="module")
def plain_explore():
    return explore_grid(small_grid(), jobs=2)


class TestExploreUnderFaults:
    def test_crash_and_hang_recover_bit_identically(self, plain_explore, monkeypatch):
        """Acceptance: a crashed worker and a hung item are retried and the
        final table is bit-identical to the fault-free run."""
        _arm(
            monkeypatch,
            {"op": "crash", "index": 0, "attempt": 0},
            {"op": "hang", "index": 3, "attempt": 0, "seconds": 30.0},
        )
        faulted = explore_grid(small_grid(), jobs=2, policy=RunPolicy(timeout=5.0))
        assert canonical(faulted.data["columns"]) == canonical(plain_explore.data["columns"])
        assert canonical(faulted.data["cells"]) == canonical(plain_explore.data["cells"])
        assert faulted.data["errors"] == [] and faulted.data["partial"] is False

    def test_corrupt_cache_entry_heals_on_the_next_run(self, tmp_path, monkeypatch):
        store = ResultCache(tmp_path / "cache")
        _arm(monkeypatch, {"op": "corrupt-cache", "index": 1, "attempt": 0})
        first = explore_grid(small_grid(), cache=store)
        monkeypatch.delenv(FAULTS_ENV)
        again = explore_grid(small_grid(), cache=store)
        # The corrupted entry reads as a miss: exactly one cell re-evaluates
        # and the healed table matches the original bit-for-bit.
        assert again.data["cached"] == 3 and again.data["evaluated"] == 1
        assert canonical(again.data["columns"]) == canonical(first.data["columns"])

    def test_exhausted_retries_give_a_partial_table(self, plain_explore, monkeypatch):
        _arm(
            monkeypatch,
            {"op": "raise", "index": 2, "attempt": 0},
            {"op": "raise", "index": 3, "attempt": 0},
        )
        partial = explore_grid(
            small_grid(), jobs=2, frontier=True, policy=RunPolicy(max_retries=0)
        )
        assert partial.data["partial"] is True
        assert [e["cell"] for e in partial.data["errors"]] == [
            partial.data["cells"][2]["name"],
            partial.data["cells"][3]["name"],
        ]
        # Failed cells carry NaN metrics; surviving cells are untouched.
        sat = partial.data["columns"]["saturation_load"]
        assert sat[:2] == plain_explore.data["columns"]["saturation_load"][:2]
        assert all(math.isnan(v) for v in sat[2:])
        # Frontier views are suppressed on partial tables.
        assert "frontier" not in partial.data
        assert "PARTIAL: 2 of 4 cell(s) failed after retries" in partial.text

    def test_resume_evaluates_only_unjournaled_cells(
        self, plain_explore, tmp_path, monkeypatch
    ):
        """Acceptance: kill-mid-run emulation — two cells fail (and are not
        journaled), then a resumed run replays the journaled two from the
        cache and produces a byte-identical full table."""
        store = ResultCache(tmp_path / "cache")
        _arm(
            monkeypatch,
            {"op": "raise", "index": 2, "attempt": 0},
            {"op": "raise", "index": 3, "attempt": 0},
        )
        interrupted = explore_grid(
            small_grid(), jobs=2, cache=store, policy=RunPolicy(max_retries=0)
        )
        assert interrupted.data["partial"] is True
        monkeypatch.delenv(FAULTS_ENV)
        resumed = explore_grid(small_grid(), jobs=2, cache=store, resume=True)
        assert resumed.data["resumed"] == 2  # the journaled, completed cells
        assert resumed.data["cached"] == 2 and resumed.data["evaluated"] == 2
        assert resumed.data["partial"] is False
        assert canonical(resumed.data["columns"]) == canonical(
            plain_explore.data["columns"]
        )
        assert "resumed 2 cell(s) from the run journal" in resumed.text

    def test_resume_requires_cache_and_an_existing_journal(self, tmp_path):
        with pytest.raises(ValueError, match="resume requires a result cache"):
            explore_grid(small_grid(), resume=True)
        with pytest.raises(ValueError, match="no run journal"):
            explore_grid(small_grid(), cache=ResultCache(tmp_path / "c"), resume=True)


class TestCalibratePartial:
    def test_failed_scenario_is_excluded_from_scoring(self, monkeypatch):
        spec_a = tiny_spec()
        spec_b = ScenarioSpec(
            name="tiny-b",
            system=spec_a.system,
            message=MessageSpec(32, 256.0),
        )
        axes = [("relaxing_factor", (True, False))]
        clean = calibrate_options([spec_a], axes=axes, messages=300, seed=1)
        # Scenario items are flattened (scenario-major); failing any point
        # of tiny-b (items 4..7) must drop only tiny-b from scoring.
        _arm(monkeypatch, {"op": "raise", "index": 4, "attempt": 0})
        partial = calibrate_options(
            [spec_a, spec_b],
            axes=axes,
            messages=300,
            seed=1,
            policy=RunPolicy(max_retries=0),
        )
        assert partial.data["partial"] is True
        assert [e["scenario"] for e in partial.data["errors"]] == ["tiny-b"]
        assert [s["name"] for s in partial.data["scenarios"]] == ["tiny"]
        assert canonical(partial.data["ranking"]) == canonical(clean.data["ranking"])
        assert "PARTIAL: 1 scenario(s) failed after retries" in partial.text

    def test_no_surviving_scenario_is_an_error(self, monkeypatch):
        _arm(monkeypatch, *[{"op": "raise", "index": i, "attempt": 0} for i in range(4)])
        with pytest.raises(ValueError, match="no scenario produced a simulator curve"):
            calibrate_options(
                [tiny_spec()],
                axes=[("relaxing_factor", (True, False))],
                messages=300,
                seed=1,
                policy=RunPolicy(max_retries=0),
            )


class TestPerformabilityPartial:
    def test_failed_state_propagates_nan_and_is_unranked(self, monkeypatch):
        scenario = FailureScenario(
            modes=(
                FailureMode(kind="node", failure_rate=1e-4, repair_rate=1e-2),
                FailureMode(
                    kind="switch", role="icn2", failure_rate=1e-5, repair_rate=1e-2
                ),
            ),
            max_concurrent=1,
            name="partial-test",
        )
        _arm(monkeypatch, {"op": "raise", "index": 1, "attempt": 0})
        result = performability_analysis(
            get_scenario("544"), scenario, policy=RunPolicy(max_retries=0)
        )
        assert result.data["partial"] is True
        assert len(result.data["errors"]) == 1
        assert "state" in result.data["errors"][0]
        failed_labels = {
            s["label"]
            for s in result.data["states"]
            if math.isnan(s["metrics"]["saturation_load"])
        }
        assert failed_labels  # the failed state's row survives as NaN
        assert result.data["errors"][0]["state"] in failed_labels
        # NaN states cannot be ranked; every ranked entry is finite.
        ranked = {r["state"] for r in result.data["ranking"]}
        assert ranked.isdisjoint(failed_labels)
        assert all(math.isfinite(r["impact"]) for r in result.data["ranking"])
        assert "PARTIAL" in result.text


class TestCliResilience:
    EXPLORE = [
        "explore",
        "--scenario",
        "544",
        "--axis",
        "system.icn2.bandwidth=500,600",
        "--axis",
        "message.length_flits=32,64",
    ]

    @staticmethod
    def _plan(*faults) -> str:
        return json.dumps({"schema": "repro.faults/1", "faults": list(faults)})

    @pytest.fixture(autouse=True)
    def _clean_faults_env(self, monkeypatch):
        # cli --faults arms the plan via os.environ; keep it test-local.
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        yield
        os.environ.pop(FAULTS_ENV, None)

    def test_partial_run_exits_3(self, capsys):
        code = cli.main(
            self.EXPLORE
            + ["--retries", "0", "--faults", self._plan({"op": "raise", "index": 0})]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "PARTIAL: 1 of 4 cell(s) failed after retries" in out

    def test_fault_free_run_exits_0(self, capsys):
        assert cli.main(self.EXPLORE) == 0
        assert "evaluated 4 of 4 cells" in capsys.readouterr().out

    def test_bad_fault_plan_fails_before_compute(self, capsys):
        code = cli.main(self.EXPLORE + ["--faults", '{"schema": "bogus/9"}'])
        assert code == 2
        assert "error:" in capsys.readouterr().err
        assert FAULTS_ENV not in os.environ  # never armed

    def test_resume_without_cache_exits_2(self, capsys):
        code = cli.main(self.EXPLORE + ["--resume"])
        assert code == 2
        assert "resume requires a result cache" in capsys.readouterr().err

    def test_cli_resume_round_trip_is_byte_identical(self, tmp_path, capsys):
        plain_csv = tmp_path / "plain.csv"
        assert cli.main(self.EXPLORE + ["--out", str(plain_csv)]) == 0
        cache = str(tmp_path / "cache")
        code = cli.main(
            self.EXPLORE
            + [
                "--cache", cache, "--retries", "0",
                "--faults",
                self._plan({"op": "raise", "index": 2}, {"op": "raise", "index": 3}),
            ]
        )
        assert code == 3
        os.environ.pop(FAULTS_ENV, None)
        resumed_csv = tmp_path / "resumed.csv"
        capsys.readouterr()
        assert (
            cli.main(
                self.EXPLORE
                + ["--cache", cache, "--resume", "--out", str(resumed_csv)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "resumed 2 cell(s) from the run journal" in out
        assert resumed_csv.read_bytes() == plain_csv.read_bytes()

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        def _interrupt(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "saturation", _interrupt)
        assert cli.main(["saturation"]) == 130
        assert "interrupted" in capsys.readouterr().err
