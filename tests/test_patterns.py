"""Traffic-pattern tests (workloads.patterns)."""

import numpy as np
import pytest

from repro.core import AnalyticalModel, MessageSpec
from repro.workloads import HotspotTraffic, LocalityTraffic, UniformTraffic

MSG = MessageSpec(16, 256.0)


def sampled_outgoing_fraction(pattern, system, src, draws=20_000, seed=0):
    rng = np.random.default_rng(seed)
    cluster = system.cluster_of(src)
    out = sum(
        1
        for _ in range(draws)
        if not cluster.contains_global(pattern.sample_destination(rng, system, src))
    )
    return out / draws


class TestUniform:
    def test_model_u_matches_eq2(self, small_system):
        pattern = UniformTraffic()
        for i in range(small_system.num_clusters):
            assert pattern.outgoing_probability(small_system, i) == pytest.approx(
                small_system.outgoing_probability(i)
            )

    def test_sampling_matches_model_u(self, built_small_system, small_system):
        pattern = UniformTraffic()
        frac = sampled_outgoing_fraction(pattern, built_small_system, 0)
        assert frac == pytest.approx(pattern.outgoing_probability(small_system, 0), abs=0.02)

    def test_weights_proportional_to_size(self, tiny_hetero_system):
        weights = UniformTraffic().destination_cluster_weights(tiny_hetero_system, 0)
        assert weights[0] == 0.0
        assert weights[1:] == [4.0, 8.0, 16.0]


class TestLocality:
    def test_sampling_matches_declared_u(self, built_small_system, small_system):
        pattern = LocalityTraffic(locality=0.7)
        frac = sampled_outgoing_fraction(pattern, built_small_system, 3)
        assert frac == pytest.approx(0.3, abs=0.02)

    def test_never_self(self, built_small_system):
        pattern = LocalityTraffic(locality=0.9)
        rng = np.random.default_rng(1)
        assert all(pattern.sample_destination(rng, built_small_system, 5) != 5 for _ in range(500))

    def test_model_latency_decreases_with_locality(self, small_system):
        """More local traffic avoids the slow inter-cluster path."""
        lam = 5e-4
        low = AnalyticalModel(small_system, MSG, pattern=LocalityTraffic(0.1)).evaluate(lam)
        high = AnalyticalModel(small_system, MSG, pattern=LocalityTraffic(0.9)).evaluate(lam)
        assert high.latency < low.latency

    def test_rejects_bad_locality(self):
        with pytest.raises(ValueError):
            LocalityTraffic(1.5)


class TestHotspot:
    def test_u_formula_non_hot_cluster(self, small_system):
        pattern = HotspotTraffic(hot_cluster=2, hot_fraction=0.4)
        u_unif = small_system.outgoing_probability(0)
        assert pattern.outgoing_probability(small_system, 0) == pytest.approx(0.4 + 0.6 * u_unif)

    def test_u_formula_hot_cluster(self, small_system):
        pattern = HotspotTraffic(hot_cluster=2, hot_fraction=0.4)
        u_unif = small_system.outgoing_probability(2)
        assert pattern.outgoing_probability(small_system, 2) == pytest.approx(0.6 * u_unif)

    def test_sampling_matches_u(self, built_small_system, small_system):
        pattern = HotspotTraffic(hot_cluster=2, hot_fraction=0.4)
        frac = sampled_outgoing_fraction(pattern, built_small_system, 0, seed=3)
        assert frac == pytest.approx(pattern.outgoing_probability(small_system, 0), abs=0.02)

    def test_hot_cluster_attracts_traffic(self, built_small_system):
        pattern = HotspotTraffic(hot_cluster=2, hot_fraction=0.5)
        rng = np.random.default_rng(5)
        hot = built_small_system.clusters[2]
        draws = 10_000
        hits = sum(
            1
            for _ in range(draws)
            if hot.contains_global(pattern.sample_destination(rng, built_small_system, 0))
        )
        # 0.5 directly + 0.5 * 8/31 uniformly.
        expected = 0.5 + 0.5 * 8 / 31
        assert hits / draws == pytest.approx(expected, abs=0.02)

    def test_weights_sum_matches_sampling_scope(self, small_system):
        pattern = HotspotTraffic(hot_cluster=1, hot_fraction=0.3)
        weights = pattern.destination_cluster_weights(small_system, 0)
        assert weights[0] == 0.0
        assert weights[1] > weights[2] == weights[3]

    def test_model_accepts_hotspot_pattern(self, small_system):
        model = AnalyticalModel(small_system, MSG, pattern=HotspotTraffic(1, 0.3))
        result = model.evaluate(2e-4)
        assert np.isfinite(result.latency)
        # The hot cluster's own nodes send less outward.
        hot = result.clusters[1]
        cold = result.clusters[0]
        assert hot.outgoing_probability < cold.outgoing_probability

    def test_out_of_range_hot_cluster_rejected(self, small_system):
        pattern = HotspotTraffic(hot_cluster=40, hot_fraction=0.3)
        with pytest.raises(ValueError):
            pattern.outgoing_probability(small_system, 0)

    def test_never_self(self, built_small_system):
        pattern = HotspotTraffic(hot_cluster=0, hot_fraction=0.9)
        rng = np.random.default_rng(2)
        assert all(pattern.sample_destination(rng, built_small_system, 2) != 2 for _ in range(500))
